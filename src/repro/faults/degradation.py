"""Graceful degradation: the stall watchdog and its quality ladder.

When the network or the pipeline misbehaves faster than GCC can react,
the hardened session steps down a degradation ladder instead of
stalling indefinitely:

- level 1 (**half fps**): every other capture tick is skipped, halving
  the offered load and giving the bottleneck queue room to drain;
- level 2 (**coarse voxel**): the receiver renders at a coarser voxel
  size, trading density for latency headroom;
- level 3 (**chroma lite**): the color stream's byte budget is cut,
  shifting the remaining bits toward geometry (depth carries the
  immersive experience; section 3.3's split already encodes that
  priority).

The :class:`StallWatchdog` drives transitions: ``watchdog_misses``
consecutive missed render deadlines step one level down, and
``recover_hysteresis`` consecutive on-time frames step one level back
up.  The asymmetry (fast down, slow up) is classic hysteresis -- it
prevents oscillating between levels while conditions are marginal.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LEVEL_NORMAL",
    "LEVEL_HALF_FPS",
    "LEVEL_COARSE_VOXEL",
    "LEVEL_CHROMA_LITE",
    "ResilienceConfig",
    "StallWatchdog",
    "level_name",
]

LEVEL_NORMAL = 0
LEVEL_HALF_FPS = 1
LEVEL_COARSE_VOXEL = 2
LEVEL_CHROMA_LITE = 3

_LEVEL_NAMES = {
    LEVEL_NORMAL: "normal",
    LEVEL_HALF_FPS: "half-fps",
    LEVEL_COARSE_VOXEL: "coarse-voxel",
    LEVEL_CHROMA_LITE: "chroma-lite",
}


def level_name(level: int) -> str:
    """Human-readable name of a ladder level."""
    return _LEVEL_NAMES.get(level, f"level-{level}")


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the hardened session's fault handling.

    ``enabled`` governs the always-safe hardening (skip failed encodes,
    frame-freeze on undecodable pairs, fused partial rigs); disabling
    it reproduces the brittle seed behavior for A/B comparison.
    ``ladder_enabled`` separately gates the stall watchdog and its
    degradation ladder, which trades quality for liveness.
    """

    enabled: bool = True
    ladder_enabled: bool = True
    watchdog_misses: int = 4
    recover_hysteresis: int = 8
    max_level: int = LEVEL_CHROMA_LITE
    fps_divisor: int = 2
    voxel_coarsen: float = 2.0
    chroma_budget_scale: float = 0.5

    def __post_init__(self) -> None:
        if self.watchdog_misses < 1:
            raise ValueError("watchdog_misses must be at least 1")
        if self.recover_hysteresis < 1:
            raise ValueError("recover_hysteresis must be at least 1")
        if not LEVEL_NORMAL <= self.max_level <= LEVEL_CHROMA_LITE:
            raise ValueError("max_level must be within the ladder")
        if self.fps_divisor < 2:
            raise ValueError("fps_divisor must be at least 2")
        if self.voxel_coarsen < 1.0:
            raise ValueError("voxel_coarsen must be >= 1")
        if not 0.0 < self.chroma_budget_scale <= 1.0:
            raise ValueError("chroma_budget_scale must be in (0, 1]")


class StallWatchdog:
    """Counts deadline outcomes and walks the degradation ladder.

    Besides the transition logic, the watchdog keeps sim-clock
    time-per-rung accounting (``time_at_level``) when its caller passes
    observation times, and can fold its whole state -- current rung,
    transition counts, seconds per rung -- into a
    :class:`repro.obs.MetricsRegistry` via :meth:`metrics_into`, so
    scenario diffs and dashboards can assert on ladder behavior.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.level = LEVEL_NORMAL
        self._misses = 0
        self._goods = 0
        self.steps_down = 0
        self.steps_up = 0
        # Sim-clock seconds spent at each rung (only accumulated when
        # observe()/finalize() are given times; deterministic because
        # the session clock is simulated).
        self.time_at_level: dict[int, float] = {}
        self._level_since: float = 0.0

    def _account(self, now: float) -> None:
        """Attribute sim time since the last observation to the rung."""
        elapsed = now - self._level_since
        if elapsed > 0.0:
            self.time_at_level[self.level] = (
                self.time_at_level.get(self.level, 0.0) + elapsed
            )
            self._level_since = now

    def finalize(self, end_s: float) -> None:
        """Close time-per-rung accounting at the session's end time."""
        self._account(end_s)

    def metrics_into(self, registry) -> None:
        """Fold ladder state into a ``repro.obs`` registry.

        Gauges: ``ladder.level`` (final rung), ``ladder.time_at.<rung>_s``
        per rung.  Counters: ``ladder.steps_down`` / ``ladder.steps_up``
        / ``ladder.transitions``.
        """
        registry.gauge("ladder.level").set(float(self.level))
        registry.counter("ladder.steps_down").inc(self.steps_down)
        registry.counter("ladder.steps_up").inc(self.steps_up)
        registry.counter("ladder.transitions").inc(self.steps_down + self.steps_up)
        for level in range(LEVEL_NORMAL, self.config.max_level + 1):
            registry.gauge(f"ladder.time_at.{level_name(level)}_s").set(
                self.time_at_level.get(level, 0.0)
            )

    def skips_tick(self, sequence: int) -> bool:
        """Whether the ladder's fps reduction skips this capture tick."""
        return (
            self.level >= LEVEL_HALF_FPS
            and sequence % self.config.fps_divisor != 0
        )

    def voxel_scale(self) -> float:
        """Render-voxel multiplier at the current level."""
        return self.config.voxel_coarsen if self.level >= LEVEL_COARSE_VOXEL else 1.0

    def color_budget_scale(self) -> float:
        """Color-stream byte-budget multiplier at the current level."""
        return (
            self.config.chroma_budget_scale
            if self.level >= LEVEL_CHROMA_LITE
            else 1.0
        )

    def observe(self, on_time: bool, now: float | None = None) -> int | None:
        """Fold in one render-deadline outcome.

        ``now`` (simulated seconds) enables time-per-rung accounting;
        without it the transition logic is unchanged.  Returns the new
        level when this observation caused a transition, else None.
        """
        if now is not None:
            self._account(now)
        if on_time:
            self._misses = 0
            self._goods += 1
            if self.level > LEVEL_NORMAL and self._goods >= self.config.recover_hysteresis:
                self._goods = 0
                self.level -= 1
                self.steps_up += 1
                return self.level
            return None
        self._goods = 0
        self._misses += 1
        if self.level < self.config.max_level and self._misses >= self.config.watchdog_misses:
            self._misses = 0
            self.level += 1
            self.steps_down += 1
            return self.level
        return None
