"""Fault plans: the declarative side of chaos testing.

A :class:`FaultPlan` schedules faults against a replay session on the
session's own simulated clock, so a plan is a complete, reproducible
description of an adverse run.  The taxonomy covers every layer the
sender -> channel -> receiver chain crosses:

- **capture**: per-camera dropout (the camera produces nothing) or
  stale-frame windows (the camera repeats its last good frame), as a
  crashed or wedged device would;
- **link**: hard outages (every packet lost) and Gilbert-Elliott burst
  loss windows (the two-state good/bad Markov chain classically used to
  model bursty wireless loss);
- **encoder**: injected encode failures at chosen capture ticks;
- **bitstream**: corrupted frame pairs observed by the receiver.

Plans are plain frozen dataclasses; :class:`repro.faults.injector.
FaultInjector` executes them deterministically from the plan's seed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CameraFault",
    "LinkOutage",
    "BurstLossWindow",
    "EncoderFault",
    "FrameCorruption",
    "FaultPlan",
    "chaos_plan",
]


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0:
        raise ValueError("fault window start must be non-negative")
    if end_s <= start_s:
        raise ValueError("fault window must end after it starts")


def _check_no_overlap(windows, label: str) -> None:
    """Reject overlapping windows aimed at the same target.

    Two windows for the same target active at once have no defined
    semantics (which camera mode wins? do two loss chains both step?),
    so a plan that schedules them is a spec bug, not a chaos scenario.
    """
    ordered = sorted(windows, key=lambda w: (w.start_s, w.end_s))
    for previous, current in zip(ordered, ordered[1:]):
        if current.start_s < previous.end_s:
            raise ValueError(
                f"overlapping {label}: "
                f"[{previous.start_s:g}, {previous.end_s:g}) and "
                f"[{current.start_s:g}, {current.end_s:g})"
            )


def _check_unique_sequences(faults, label: str) -> None:
    seen: set[int] = set()
    for fault in faults:
        if fault.sequence in seen:
            raise ValueError(f"duplicate {label} at sequence {fault.sequence}")
        seen.add(fault.sequence)


@dataclass(frozen=True)
class CameraFault:
    """One camera misbehaving over a time window.

    ``mode="dropout"`` zeroes the camera's view (no points contributed);
    ``mode="stale"`` repeats the camera's last pre-fault frame, the way
    a wedged driver keeps returning its final capture.
    """

    camera_id: int
    start_s: float
    end_s: float
    mode: str = "dropout"

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.camera_id < 0:
            raise ValueError("camera_id must be non-negative")
        if self.mode not in ("dropout", "stale"):
            raise ValueError(f"unknown camera fault mode {self.mode!r}")

    def active(self, t: float) -> bool:
        """Whether the fault covers simulated time ``t``."""
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class LinkOutage:
    """A hard outage: every packet offered in the window is lost."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)

    def active(self, t: float) -> bool:
        """Whether the outage covers simulated time ``t``."""
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class BurstLossWindow:
    """Gilbert-Elliott burst loss active over a time window.

    ``p_enter`` is the good->bad transition probability per packet,
    ``p_exit`` the bad->good one, and ``loss_in_bad`` the drop
    probability while in the bad state (the good state is lossless).
    Mean burst length is ``1 / p_exit`` packets.
    """

    start_s: float
    end_s: float
    p_enter: float = 0.02
    p_exit: float = 0.25
    loss_in_bad: float = 0.8

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        for name in ("p_enter", "p_exit", "loss_in_bad"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    def active(self, t: float) -> bool:
        """Whether the window covers simulated time ``t``."""
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class EncoderFault:
    """The encoder fails outright at one capture tick."""

    sequence: int

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")


@dataclass(frozen=True)
class FrameCorruption:
    """The receiver observes a corrupted (undecodable) frame pair."""

    sequence: int

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, complete schedule of faults for one session replay."""

    seed: int = 0
    camera_faults: tuple[CameraFault, ...] = ()
    link_outages: tuple[LinkOutage, ...] = ()
    burst_loss: tuple[BurstLossWindow, ...] = ()
    encoder_faults: tuple[EncoderFault, ...] = ()
    corrupted_frames: tuple[FrameCorruption, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists at construction; store tuples for hashability.
        object.__setattr__(self, "camera_faults", tuple(self.camera_faults))
        object.__setattr__(self, "link_outages", tuple(self.link_outages))
        object.__setattr__(self, "burst_loss", tuple(self.burst_loss))
        object.__setattr__(self, "encoder_faults", tuple(self.encoder_faults))
        object.__setattr__(self, "corrupted_frames", tuple(self.corrupted_frames))
        # Same-target overlap validation.  Camera faults may overlap in
        # time across *different* cameras (a rig-wide event); two
        # windows on one camera are contradictory.
        by_camera: dict[int, list[CameraFault]] = {}
        for fault in self.camera_faults:
            by_camera.setdefault(fault.camera_id, []).append(fault)
        for camera_id, faults in by_camera.items():
            _check_no_overlap(faults, f"camera faults for camera {camera_id}")
        _check_no_overlap(self.link_outages, "link outages")
        _check_no_overlap(self.burst_loss, "burst-loss windows")
        _check_unique_sequences(self.encoder_faults, "encoder fault")
        _check_unique_sequences(self.corrupted_frames, "frame corruption")

    def to_dict(self) -> dict:
        """JSON-friendly form (scenario artifact headers)."""
        return {
            "seed": self.seed,
            "camera_faults": [
                {
                    "camera_id": f.camera_id,
                    "start_s": f.start_s,
                    "end_s": f.end_s,
                    "mode": f.mode,
                }
                for f in self.camera_faults
            ],
            "link_outages": [
                {"start_s": o.start_s, "end_s": o.end_s} for o in self.link_outages
            ],
            "burst_loss": [
                {
                    "start_s": w.start_s,
                    "end_s": w.end_s,
                    "p_enter": w.p_enter,
                    "p_exit": w.p_exit,
                    "loss_in_bad": w.loss_in_bad,
                }
                for w in self.burst_loss
            ],
            "encoder_faults": [f.sequence for f in self.encoder_faults],
            "corrupted_frames": [f.sequence for f in self.corrupted_frames],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict` (validated anew)."""
        return cls(
            seed=int(data.get("seed", 0)),
            camera_faults=tuple(
                CameraFault(**entry) for entry in data.get("camera_faults", ())
            ),
            link_outages=tuple(
                LinkOutage(**entry) for entry in data.get("link_outages", ())
            ),
            burst_loss=tuple(
                BurstLossWindow(**entry) for entry in data.get("burst_loss", ())
            ),
            encoder_faults=tuple(
                EncoderFault(sequence) for sequence in data.get("encoder_faults", ())
            ),
            corrupted_frames=tuple(
                FrameCorruption(sequence) for sequence in data.get("corrupted_frames", ())
            ),
        )

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules no faults at all."""
        return not (
            self.camera_faults
            or self.link_outages
            or self.burst_loss
            or self.encoder_faults
            or self.corrupted_frames
        )


def chaos_plan(seed: int = 7) -> FaultPlan:
    """The canned mixed-fault plan the chaos suite replays.

    Within a ~5 s session: two cameras drop out for a second (one hard,
    one stale), the link suffers a full 1 s outage plus a burst-loss
    tail, one encode fails outright, and one frame pair arrives
    corrupted.  Every subsystem's recovery path is exercised.
    """
    return FaultPlan(
        seed=seed,
        camera_faults=(
            CameraFault(camera_id=1, start_s=0.8, end_s=1.8, mode="dropout"),
            CameraFault(camera_id=3, start_s=1.0, end_s=2.0, mode="stale"),
        ),
        link_outages=(LinkOutage(start_s=2.4, end_s=3.4),),
        burst_loss=(
            BurstLossWindow(start_s=3.6, end_s=4.2, p_enter=0.05, p_exit=0.3),
        ),
        encoder_faults=(EncoderFault(sequence=12),),
        corrupted_frames=(FrameCorruption(sequence=18),),
    )
