"""Deterministic fault injection for LiVo replay sessions.

The paper's evaluation replays smooth bandwidth traces; production
sessions face camera dropouts, link outages, bursty loss, encoder
crashes, and corrupted bitstreams.  This package models that fault
taxonomy as data (:class:`FaultPlan`), executes it deterministically
(:class:`FaultInjector`), and provides the graceful-degradation
machinery the hardened session uses to survive it
(:class:`ResilienceConfig`, :class:`StallWatchdog`).

Everything is seeded: an identical plan produces byte-identical
session reports across runs, so chaos experiments are replayable.
"""

from repro.faults.degradation import (
    LEVEL_CHROMA_LITE,
    LEVEL_COARSE_VOXEL,
    LEVEL_HALF_FPS,
    LEVEL_NORMAL,
    ResilienceConfig,
    StallWatchdog,
    level_name,
)
from repro.faults.injector import FaultInjector, GilbertElliott
from repro.faults.plan import (
    BurstLossWindow,
    CameraFault,
    EncoderFault,
    FaultPlan,
    FrameCorruption,
    LinkOutage,
    chaos_plan,
)

__all__ = [
    "BurstLossWindow",
    "CameraFault",
    "EncoderFault",
    "FaultInjector",
    "FaultPlan",
    "FrameCorruption",
    "GilbertElliott",
    "LinkOutage",
    "ResilienceConfig",
    "StallWatchdog",
    "chaos_plan",
    "level_name",
    "LEVEL_NORMAL",
    "LEVEL_HALF_FPS",
    "LEVEL_COARSE_VOXEL",
    "LEVEL_CHROMA_LITE",
]
