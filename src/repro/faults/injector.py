"""Deterministic execution of a :class:`repro.faults.plan.FaultPlan`.

The injector is pure mechanism: the session asks it questions
("does this packet survive?", "is camera 3 alive at t=1.2s?") and it
answers from the plan plus seeded RNG streams.  Each fault family
draws from its own :func:`numpy.random.default_rng` stream, so adding
faults of one kind never perturbs the draws of another -- the property
that makes chaos runs byte-for-byte reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.capture.rgbd import MultiViewFrame, RGBDFrame
from repro.codec.frame import EncodedFrame
from repro.faults.plan import BurstLossWindow, FaultPlan
from repro.transport.packet import Packet

__all__ = ["GilbertElliott", "FaultInjector"]


class GilbertElliott:
    """Two-state Markov loss chain (good/bad), stepped once per packet."""

    def __init__(self, window: BurstLossWindow, rng: np.random.Generator) -> None:
        self.window = window
        self._rng = rng
        self._bad = False

    def step(self) -> bool:
        """Advance one packet; returns True if the packet is lost."""
        if self._bad:
            if self._rng.random() < self.window.p_exit:
                self._bad = False
        else:
            if self._rng.random() < self.window.p_enter:
                self._bad = True
        if not self._bad:
            return False
        return self._rng.random() < self.window.loss_in_bad


class FaultInjector:
    """Answers fault queries for one session replay, deterministically."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # Independent seeded streams per fault family.
        self._burst_rng = np.random.default_rng(plan.seed)
        self._corrupt_rng = np.random.default_rng(plan.seed + 1)
        self._chains = [
            GilbertElliott(window, self._burst_rng) for window in plan.burst_loss
        ]
        self._stale_views: dict[int, RGBDFrame] = {}
        self._encode_fail_sequences = {f.sequence for f in plan.encoder_faults}
        self._corrupt_sequences = {f.sequence for f in plan.corrupted_frames}
        self.link_fault_drops = 0

    def metrics_into(self, registry) -> None:
        """Fold injector counters into a ``repro.obs`` registry."""
        registry.counter("faults.link_fault_drops").inc(self.link_fault_drops)

    # ------------------------------------------------------------------
    # Capture layer
    # ------------------------------------------------------------------

    def camera_modes(self, t: float, num_cameras: int) -> dict[int, str]:
        """Active fault mode per affected camera at time ``t``."""
        modes: dict[int, str] = {}
        for fault in self.plan.camera_faults:
            if fault.camera_id < num_cameras and fault.active(t):
                modes[fault.camera_id] = fault.mode
        return modes

    def apply_camera_faults(
        self, frame: MultiViewFrame, t: float
    ) -> tuple[MultiViewFrame, dict[int, str]]:
        """Substitute faulted views; returns the frame plus active modes.

        Healthy views refresh the stale-frame cache, a "stale" camera
        replays its last healthy view, and a "dropout" camera yields a
        zeroed view (no valid depth, hence no contributed points --
        downstream fusion simply sees fewer live cameras).
        """
        modes = self.camera_modes(t, frame.num_cameras)
        if not modes:
            for view in frame.views:
                self._stale_views[view.camera_id] = view
            return frame, modes
        views = []
        for view in frame.views:
            mode = modes.get(view.camera_id)
            if mode is None:
                self._stale_views[view.camera_id] = view
                views.append(view)
            elif mode == "stale" and view.camera_id in self._stale_views:
                cached = self._stale_views[view.camera_id]
                views.append(
                    RGBDFrame(
                        cached.color,
                        cached.depth_mm,
                        camera_id=view.camera_id,
                        sequence=view.sequence,
                        timestamp_s=view.timestamp_s,
                    )
                )
            else:  # dropout, or stale with nothing cached yet
                views.append(
                    RGBDFrame(
                        np.zeros_like(view.color),
                        np.zeros_like(view.depth_mm),
                        camera_id=view.camera_id,
                        sequence=view.sequence,
                        timestamp_s=view.timestamp_s,
                    )
                )
        return (
            MultiViewFrame(views, sequence=frame.sequence, timestamp_s=frame.timestamp_s),
            modes,
        )

    # ------------------------------------------------------------------
    # Link layer (plugged into EmulatedLink.fault_hook)
    # ------------------------------------------------------------------

    def link_drop(self, packet: Packet) -> bool:
        """Whether the link faults swallow this packet."""
        t = packet.send_time_s
        for outage in self.plan.link_outages:
            if outage.active(t):
                self.link_fault_drops += 1
                return True
        for chain in self._chains:
            if chain.window.active(t) and chain.step():
                self.link_fault_drops += 1
                return True
        return False

    def link_outage_active(self, t: float) -> bool:
        """Whether any hard outage covers time ``t`` (for event edges)."""
        return any(outage.active(t) for outage in self.plan.link_outages)

    def burst_loss_active(self, t: float) -> bool:
        """Whether any burst-loss window covers time ``t``."""
        return any(window.active(t) for window in self.plan.burst_loss)

    # ------------------------------------------------------------------
    # Encoder / bitstream layers
    # ------------------------------------------------------------------

    def encode_fails(self, sequence: int) -> bool:
        """Whether the encoder fails at this capture tick."""
        return sequence in self._encode_fail_sequences

    def corrupts_pair(self, sequence: int) -> bool:
        """Whether this frame pair reaches the receiver corrupted."""
        return sequence in self._corrupt_sequences

    def corrupt_frame(self, frame: EncodedFrame) -> EncodedFrame:
        """Return an undecodable copy of ``frame`` (mangled payload)."""
        payload = frame.payload
        if len(payload) <= 1:
            mangled = b""
        else:
            # Truncate and flip a deterministic byte: breaks both the
            # plane framing and the entropy payload.
            cut = max(1, len(payload) // 2)
            index = int(self._corrupt_rng.integers(0, cut))
            mangled = bytes(
                payload[:index] + bytes([payload[index] ^ 0xFF]) + payload[index + 1 : cut]
            )
        return EncodedFrame(
            frame_type=frame.frame_type,
            pixel_format=frame.pixel_format,
            qp=frame.qp,
            sequence=frame.sequence,
            height=frame.height,
            width=frame.width,
            payload=mangled,
        )
