"""Fault injection at stage boundaries.

PR 1 scattered the :class:`~repro.faults.injector.FaultInjector` calls
through the session loop; the stage-graph runtime gives each fault
family a natural seam instead -- the boundary between two stages:

- **capture boundary** (post-capture hook): camera dropout/stale
  substitution, plus the per-camera window-edge events;
- **encode boundary** (pre-encode hook): injected encoder failures;
- **delivery boundary** (pre-decode hook): bitstream corruption of a
  pair that reached the receiver;
- **tick boundary**: link outage / burst-loss window-edge events (the
  drops themselves stay inside the link's ``fault_hook``).

The boundary object owns all the event bookkeeping (active camera
modes, outage/burst edge state) so the session loop carries none of
it.  All methods are no-ops when no injector is attached, keeping the
clean path byte-identical to a no-plan run.
"""

from __future__ import annotations

from repro.capture.rgbd import MultiViewFrame
from repro.codec.frame import EncodedFrame
from repro.core.stats import FaultEvent
from repro.faults.injector import FaultInjector

__all__ = ["StageFaultBoundary"]


class StageFaultBoundary:
    """Binds one session's injector and event log to stage boundaries."""

    def __init__(
        self, injector: FaultInjector | None, events: list[FaultEvent]
    ) -> None:
        self.injector = injector
        self.events = events
        self._active_camera_modes: dict[int, str] = {}
        self._outage_active = False
        self._burst_active = False

    # ------------------------------------------------------------------
    # Tick boundary: link-level window edges
    # ------------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Record link outage / burst-loss window edges crossing ``now``."""
        if self.injector is None:
            return
        outage_now = self.injector.link_outage_active(now)
        if outage_now != self._outage_active:
            self.events.append(
                FaultEvent(
                    time_s=now,
                    category="link_outage" if outage_now else "link_outage_end",
                    detail="link outage window",
                    recovered=not outage_now,
                )
            )
            self._outage_active = outage_now
        burst_now = self.injector.burst_loss_active(now)
        if burst_now != self._burst_active:
            self.events.append(
                FaultEvent(
                    time_s=now,
                    category="burst_loss" if burst_now else "burst_loss_end",
                    detail="Gilbert-Elliott burst-loss window",
                    recovered=not burst_now,
                )
            )
            self._burst_active = burst_now

    # ------------------------------------------------------------------
    # Capture boundary
    # ------------------------------------------------------------------

    def apply_camera_faults(
        self, frame: MultiViewFrame, now: float
    ) -> MultiViewFrame:
        """Substitute faulted views and log per-camera window edges."""
        if self.injector is None:
            return frame
        frame, modes = self.injector.apply_camera_faults(frame, now)
        for camera_id, mode in modes.items():
            if self._active_camera_modes.get(camera_id) != mode:
                self.events.append(
                    FaultEvent(
                        time_s=now,
                        category=f"camera_{mode}",
                        detail=f"camera {camera_id} {mode} window",
                        sequence=frame.sequence,
                    )
                )
        for camera_id in self._active_camera_modes:
            if camera_id not in modes:
                self.events.append(
                    FaultEvent(
                        time_s=now,
                        category="camera_recovered",
                        detail=f"camera {camera_id} healthy again",
                        sequence=frame.sequence,
                        recovered=True,
                    )
                )
        self._active_camera_modes = modes
        return frame

    # ------------------------------------------------------------------
    # Encode boundary
    # ------------------------------------------------------------------

    def encode_fails(self, sequence: int) -> bool:
        """Whether an injected encoder failure fires at this tick."""
        return self.injector is not None and self.injector.encode_fails(sequence)

    # ------------------------------------------------------------------
    # Delivery boundary (pre-decode)
    # ------------------------------------------------------------------

    def corrupt_delivered_pair(
        self, color_frame: EncodedFrame, sequence: int, now: float
    ) -> EncodedFrame:
        """Corrupt a delivered pair's color bitstream when planned."""
        if self.injector is None or not self.injector.corrupts_pair(sequence):
            return color_frame
        corrupted = self.injector.corrupt_frame(color_frame)
        self.events.append(
            FaultEvent(
                time_s=now,
                category="corrupt_frame",
                detail="injected bitstream corruption",
                sequence=sequence,
            )
        )
        return corrupted
