"""Thin asyncio HTTP/1.1 layer: JSON in, JSON out, stdlib only.

Deliberately small: the service needs request-line + header parsing,
``Content-Length`` bodies, keep-alive, and JSON responses -- not a web
framework.  Two halves:

- :class:`HttpServer` -- ``asyncio.start_server`` wrapper dispatching
  each request to a synchronous handler ``handler(request) ->
  (status, payload)`` on a small thread pool (handlers take registry
  locks and may build sessions; the event loop must stay responsive
  while they do).
- :class:`JsonClient` -- a keep-alive connection pool the load
  generator drives thousands of simulated clients through without
  opening a socket per request.

Malformed requests get 400s, handler bugs get 500s with a counter
bump; neither kills the connection loop.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpError", "HttpRequest", "HttpServer", "JsonClient"]

# Request bodies are tiny JSON control messages; anything bigger is
# abuse, not traffic.
_MAX_BODY_BYTES = 1 << 20
_MAX_HEADER_LINES = 64

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    410: "Gone", 413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Raise inside a handler to return a specific status + message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """Parse the body as a JSON object ({} when empty)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HttpError(400, f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload


def _encode_response(status: int, payload: dict, keep_alive: bool) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n\r\n"
    )
    return head.encode("ascii") + body


async def _read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; None on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _ = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise HttpError(413, "body too large")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


class HttpServer:
    """Serve ``handler(request) -> (status, dict)`` over HTTP/1.1.

    The handler is synchronous and runs on ``handler_threads`` pool
    threads; it must be thread-safe (the registry is).  ``metrics`` --
    when given -- receives ``service.http.*`` counters.
    """

    def __init__(self, handler, host: str = "127.0.0.1", port: int = 0,
                 metrics=None, handler_threads: int = 4) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.metrics = metrics
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._pool = ThreadPoolExecutor(
            max_workers=handler_threads, thread_name_prefix="service-http"
        )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit in readline(); cancel them so
        # the loop can close without destroying pending tasks.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._pool.shutdown(wait=False)

    async def _serve_connection(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except HttpError as error:
                    writer.write(
                        _encode_response(
                            error.status, {"error": error.message}, False
                        )
                    )
                    await writer.drain()
                    self._count("service.http.bad_requests")
                    break
                if request is None:
                    break
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    status, payload = await loop.run_in_executor(
                        self._pool, self.handler, request
                    )
                except HttpError as error:
                    status, payload = error.status, {"error": error.message}
                except Exception as error:  # noqa: BLE001 -- 500, never a dead loop
                    status, payload = 500, {"error": repr(error)}
                    self._count("service.http.errors_5xx")
                self._count("service.http.requests")
                if status >= 500:
                    self._count("service.http.responses_5xx")
                writer.write(_encode_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; its problem
        except asyncio.CancelledError:
            pass  # server shutting down
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass
            # Deregister last: until here the task still has an await
            # pending, and ``aclose`` must gather it before the loop
            # closes or the task dies un-reaped.
            if task is not None:
                self._connections.discard(task)


class JsonClient:
    """Keep-alive JSON client with a bounded connection pool.

    ``pool`` connections are opened lazily and multiplex any number of
    logical clients; each request checks a connection out, so fd usage
    stays bounded no matter how many simulated clients the load
    generator runs.
    """

    def __init__(self, host: str, port: int, pool: int = 16) -> None:
        self.host = host
        self.port = port
        self._free: asyncio.Queue = asyncio.Queue()
        self._available = asyncio.Semaphore(pool)
        self._all: list[tuple] = []

    async def _checkout(self):
        await self._available.acquire()
        try:
            return self._free.get_nowait()
        except asyncio.QueueEmpty:
            pair = await asyncio.open_connection(self.host, self.port)
            self._all.append(pair)
            return pair

    def _checkin(self, pair) -> None:
        self._free.put_nowait(pair)
        self._available.release()

    def _discard(self, pair) -> None:
        reader, writer = pair
        try:
            self._all.remove(pair)
        except ValueError:
            pass
        writer.close()
        self._available.release()

    async def request(self, method: str, path: str, payload: dict | None = None):
        """One round trip; returns (status, parsed_json)."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("ascii")
        pair = await self._checkout()
        reader, writer = pair
        try:
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            if not status_line:
                raise ConnectionResetError("server closed the connection")
            status = int(status_line.split()[1])
            length = 0
            keep = True
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                name = name.strip().lower()
                if name == "content-length":
                    length = int(value.strip())
                elif name == "connection" and value.strip().lower() == "close":
                    keep = False
            data = await reader.readexactly(length) if length else b""
        except Exception:
            self._discard(pair)
            raise
        if keep:
            self._checkin(pair)
        else:
            self._discard(pair)
        return status, (json.loads(data) if data else {})

    async def aclose(self) -> None:
        for _, writer in self._all:
            writer.close()
        self._all.clear()
