"""Tick worker pool: advances every running session, frame by frame.

The media plane of the service.  One scheduler thread runs rounds; a
round

1. reaps draining sessions (closing their encoder workers),
2. applies each running session's queued membership ops (the registry
   mailboxes -- so HTTP joins/leaves never race the tick),
3. ticks every running session one frame -- co-scheduled through the
   cross-session :class:`~repro.runtime.batchplane.BatchPlane` when
   more than one session is due (the fleet harness's lockstep SoA
   trick, DESIGN.md section 15), per-session otherwise, optionally
   fanned out over a thread executor (``repro.runtime.executors``),
4. records per-session tick latency into ``service.tick_ms`` and
   paces to ``tick_interval_s`` (0 = free-running, the benchmark
   mode).

Failure containment: a session whose tick raises is marked failed and
drained -- the other sessions in the round are unaffected (each
lockstep generator is wrapped in a guard that converts an escaped
exception into a per-session outcome), and the scheduler thread never
dies.  That is the degrade-don't-500 contract the load generator's
chaos profile leans on.
"""

from __future__ import annotations

import threading
import time
from time import perf_counter

__all__ = ["TickWorkerPool"]

FPS = 30.0

# Scheduler idle sleep when no session is running.
_IDLE_SLEEP_S = 0.002


def _guarded_steps(driver, frame, now, target_rate_bps, horizon_s):
    """Wrap ``tick_steps`` so one session's crash stays its own.

    The batch plane re-raises kernel failures *inside* the owning
    generator; anything that escapes -- including failures before the
    first yield -- must not poison the lockstep round.  The guard turns
    the exception into a returned outcome the round handler can map to
    ``mark_failed``.
    """
    try:
        yield from driver.tick_steps(frame, now, target_rate_bps, horizon_s)
        return None
    except Exception as error:  # noqa: BLE001 -- the whole point
        return error


class TickWorkerPool:
    """Background scheduler ticking the registry's running sessions."""

    def __init__(
        self,
        registry,
        source,
        batch_plane: bool = True,
        tick_interval_s: float = 0.0,
        jobs: int = 1,
        horizon_s: float = 0.1,
    ) -> None:
        from repro.runtime.batchplane import BatchPlane
        from repro.runtime.executors import make_executor

        self.registry = registry
        self.source = source
        self.tick_interval_s = float(tick_interval_s)
        self.horizon_s = horizon_s
        self.plane = BatchPlane() if batch_plane else None
        self.executor = make_executor(jobs, "thread") if jobs > 1 else None
        self.rounds = 0
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        self._tick_ms = registry.metrics.histogram("service.tick_ms")

    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            raise RuntimeError("worker pool already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="service-tick-pool", daemon=True
        )
        self._thread.start()

    def wake(self) -> None:
        """Nudge the scheduler out of its idle sleep (tests, shutdown)."""
        self._wake.set()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the scheduler and release the executor; idempotent."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():  # pragma: no cover - watchdog only
                raise RuntimeError("tick worker failed to stop")
            self._thread = None
        if self.executor is not None:
            self.executor.close()

    # ------------------------------------------------------------------

    def _apply_pending_ops(self, record) -> None:
        """Apply queued joins/leaves at the tick boundary."""
        for op, client in self.registry.take_pending_ops(record):
            try:
                if op == "join":
                    record.driver.join(client)
                else:
                    record.driver.leave(client)
            except Exception as error:  # membership must never kill a tick
                self.registry.metrics.counter("service.membership.errors").inc()
                self.registry._audit_event(
                    "membership_error", record.session_id, f"{op} {client}: {error}"
                )

    def _tick_one(self, record):
        """One serial session tick; returns (error, elapsed_s)."""
        driver = record.driver
        sequence = driver.frames_ticked
        try:
            frame = self.source.capture(sequence)
            elapsed = driver.tick(
                frame, sequence / FPS, record.target_rate_bps, self.horizon_s
            )
        except Exception as error:  # noqa: BLE001
            return error, 0.0
        return None, elapsed

    def _note_tick(self, record, elapsed: float) -> None:
        record.frames_ticked = record.driver.frames_ticked
        record.tick_seconds += elapsed
        self._tick_ms.observe(elapsed * 1e3)
        self.registry.metrics.counter("service.ticks").inc()

    def run_round(self) -> int:
        """One scheduling round; returns how many sessions ticked.

        Exposed publicly so tests (and a future step-driven service
        mode) can advance the media plane without the real-time thread.
        """
        for record in self.registry.draining_records():
            self.registry.reap(record)
        records = self.registry.running_records()
        if not records:
            return 0
        for record in records:
            self._apply_pending_ops(record)
        self.rounds += 1
        if self.plane is not None and len(records) > 1:
            generators = []
            for record in records:
                driver = record.driver
                frame = self.source.capture(driver.frames_ticked)
                generators.append(
                    _guarded_steps(
                        driver,
                        frame,
                        driver.frames_ticked / FPS,
                        record.target_rate_bps,
                        self.horizon_s,
                    )
                )
            outcome = self.plane.run_lockstep(generators)
            for record, error, elapsed in zip(
                records, outcome.values, outcome.elapsed
            ):
                if error is not None:
                    self.registry.mark_failed(record, error)
                else:
                    self._note_tick(record, elapsed)
        else:
            if self.executor is not None and self.executor.parallel and len(records) > 1:
                outcomes = self.executor.map(self._tick_one, records)
            else:
                outcomes = [self._tick_one(record) for record in records]
            # Metrics and state moves stay on the scheduler thread --
            # counters are plain ints, not atomics.
            for record, (error, elapsed) in zip(records, outcomes):
                if error is not None:
                    self.registry.mark_failed(record, error)
                else:
                    self._note_tick(record, elapsed)
        return len(records)

    def _run(self) -> None:
        while not self._stop.is_set():
            started = perf_counter()
            try:
                ticked = self.run_round()
            except Exception as error:  # pragma: no cover - belt and braces
                # A round-level failure (e.g. the capture source itself
                # broke) must not kill the scheduler thread; count it
                # and keep serving the sessions that still work.
                self.registry.metrics.counter("service.round.errors").inc()
                self.registry._audit_event("round_error", "-", repr(error))
                ticked = 0
            if ticked == 0:
                self._wake.wait(_IDLE_SLEEP_S)
                self._wake.clear()
                continue
            if self.tick_interval_s > 0.0:
                budget = self.tick_interval_s - (perf_counter() - started)
                if budget > 0:
                    time.sleep(budget)
