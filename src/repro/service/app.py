"""The service application: config, session factory, routes, wiring.

``ServiceApp`` composes the control plane (:class:`~repro.service.
registry.SessionRegistry` + REST-ish routes), the media plane
(:class:`~repro.service.workers.TickWorkerPool` over shared capture /
kernel caches), and observability (one
:class:`~repro.obs.metrics.MetricsRegistry` feeding ``/metrics``, an
audit log feeding ``/audit``).

Routes (JSON both ways)::

    GET  /healthz                      liveness + session state tally
    GET  /metrics                      the metrics registry, rendered
    GET  /audit?limit=N                recent lifecycle/audit events
    POST /v1/sessions                  create  {receivers|clients, scheme, seed}
    GET  /v1/sessions                  list
    GET  /v1/sessions/<id>             record summary
    GET  /v1/sessions/<id>/stats       full stats (SessionReport-shaped)
    POST /v1/sessions/<id>/join        {client}
    POST /v1/sessions/<id>/leave       {client}
    POST /v1/sessions/<id>/kill        drain + reap

Error mapping: unknown session -> 404, wrong lifecycle state -> 409,
duplicate/unknown client -> 409/404, bad JSON -> 400.  A session whose
worker crashed answers ``stats`` with 200 + ``state: dead`` -- sessions
degrade; routes never 500 for media failures.

``ServiceHandle`` runs the whole stack on a background thread with its
own event loop so the CLI, tests, and the in-process load generator
share one start/stop path.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass

from repro.service.http import HttpError, HttpRequest, HttpServer
from repro.service.registry import (
    LifecycleError,
    SessionNotFound,
    SessionRegistry,
)
from repro.service.workers import TickWorkerPool

__all__ = ["ServiceConfig", "SessionFactory", "ServiceApp", "ServiceHandle", "SCHEME_RATES"]

# The "mixed schemes" the control plane accepts: LiVo sessions pinned
# at different encode-rate tiers.  The label rides the session record
# (and the load generator mixes them); the number is the per-tick
# target the worker passes to the driver.
SCHEME_RATES = {
    "livo-1m": 1e6,
    "livo-2m": 2e6,
    "livo-4m": 4e6,
}


@dataclass(frozen=True)
class ServiceConfig:
    """Shape of the hosted sessions and of the service itself."""

    host: str = "127.0.0.1"
    port: int = 0                   # 0 = pick a free port
    video: str = "office1"
    # The tiled atlas embeds a 64-px sequence marker, so the cameras
    # must tile to >= 64 px across: 2 x 32 clears it at minimum cost.
    num_cameras: int = 2
    camera_width: int = 32
    camera_height: int = 16
    sample_budget: int = 600
    gop_size: int = 4
    downlink_mbps: float = 4.0
    pose_trace_frames: int = 300
    seed: int = 0
    batch_plane: bool = True        # co-schedule sessions on the batch plane
    jobs: int = 1                   # >1 fans serial ticks over threads
    tick_interval_s: float = 0.0    # 0 = free-running (benchmark mode)
    max_clients_per_session: int = 64
    max_sessions: int = 4096

    def __post_init__(self) -> None:
        if self.num_cameras <= 0 or self.sample_budget <= 0:
            raise ValueError("num_cameras/sample_budget must be positive")
        if self.tick_interval_s < 0:
            raise ValueError("tick_interval_s must be >= 0")


class SessionFactory:
    """Builds conference drivers over service-wide shared state.

    One scene, rig, cached capture source, downlink trace template, and
    pose-trace set serve every session -- the same cross-session cache
    sharing the fleet harness exploits (one splat render per sequence
    for the whole service).
    """

    def __init__(self, config: ServiceConfig) -> None:
        from repro.capture.dataset import load_video
        from repro.capture.rig import default_rig
        from repro.core.config import SessionConfig
        from repro.perf.capture import CachedFrameSource
        from repro.prediction.pose import user_traces_for_video
        from repro.transport.traces import constant_trace

        self.config = config
        self.session_config = SessionConfig(
            num_cameras=config.num_cameras,
            camera_width=config.camera_width,
            camera_height=config.camera_height,
            scene_sample_budget=config.sample_budget,
            gop_size=config.gop_size,
        )
        _, self.scene = load_video(config.video, sample_budget=config.sample_budget)
        self.rig = default_rig(
            num_cameras=config.num_cameras,
            width=config.camera_width,
            height=config.camera_height,
        )
        self.source = CachedFrameSource(self.rig, self.scene)
        self.pose_traces = user_traces_for_video(
            config.video, config.pose_trace_frames
        )
        # Long-lived sessions clamp at the trace tail (PoseTrace
        # clamps); give downlinks a long template trace too.
        self.downlink_trace = constant_trace(
            config.downlink_mbps, duration_s=config.pose_trace_frames / 30.0 + 10.0
        )
        self.executor = None  # per-driver fan-out stays off in the service

    def __call__(self, index: int, seed: int, receivers: list[str],
                 target_rate_bps: float) -> object:
        from repro.sfu.conference import ConferenceDriver

        driver = ConferenceDriver(
            index,
            self.rig,
            self.session_config,
            self.downlink_trace,
            self.pose_traces,
            seed=self.config.seed + seed,
            receivers=0,                  # named clients join below
            churn_every=1 << 30,          # service churn is HTTP-driven
            executor=self.executor,
        )
        for name in receivers:
            driver.join(name)
        return driver


class ServiceApp:
    """Registry + worker pool + route table behind one handler."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self.factory = SessionFactory(self.config)
        self.registry = SessionRegistry(
            self.factory,
            metrics=self.metrics,
            max_clients_per_session=self.config.max_clients_per_session,
        )
        self.pool = TickWorkerPool(
            self.registry,
            self.factory.source,
            batch_plane=self.config.batch_plane,
            tick_interval_s=self.config.tick_interval_s,
            jobs=self.config.jobs,
        )
        self._started_at = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start_workers(self) -> None:
        import time

        self._started_at = time.monotonic()
        self.pool.start()

    def close(self) -> None:
        """Stop ticking, drain every session, release every worker."""
        self.pool.stop()
        self.registry.close()

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def handle(self, request: HttpRequest) -> tuple[int, dict]:
        """Route one request; the HttpServer calls this on pool threads."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/metrics" and method == "GET":
            return 200, self.metrics.to_dict()
        if path == "/audit" and method == "GET":
            limit = int(request.query.get("limit", "100"))
            return 200, {"events": self.registry.audit_log(limit=limit)}
        if path == "/v1/sessions":
            if method == "POST":
                return self._create(request)
            if method == "GET":
                return 200, {"sessions": self.registry.list_sessions()}
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/sessions/"):
            return self._session_route(method, path, request)
        raise HttpError(404, f"no route for {method} {path}")

    def _healthz(self) -> tuple[int, dict]:
        import time

        counts = self.registry.counts()
        payload = {
            "status": "ok" if self.pool.running else "degraded",
            "sessions": counts,
            "worker_rounds": self.pool.rounds,
            "uptime_s": (
                round(time.monotonic() - self._started_at, 3)
                if self._started_at is not None
                else 0.0
            ),
        }
        self.metrics.gauge("service.sessions.running").set(counts["running"])
        return (200 if self.pool.running else 503), payload

    def _create(self, request: HttpRequest) -> tuple[int, dict]:
        body = request.json()
        scheme = body.get("scheme", "livo-2m")
        if scheme not in SCHEME_RATES:
            raise HttpError(
                400, f"unknown scheme {scheme!r}; one of {sorted(SCHEME_RATES)}"
            )
        clients = body.get("clients")
        if clients is not None and not (
            isinstance(clients, list)
            and all(isinstance(name, str) for name in clients)
        ):
            raise HttpError(400, "clients must be a list of strings")
        if len(self.registry.list_sessions()) >= self.config.max_sessions:
            raise HttpError(503, "session capacity reached")
        record = self.registry.create(
            receivers=int(body.get("receivers", 0)),
            seed=body.get("seed"),
            scheme=scheme,
            target_rate_bps=SCHEME_RATES[scheme],
            initial_clients=clients,
        )
        status = 201 if record.state == "running" else 410
        return status, {"session": record.session_id, "state": record.state}

    def _session_route(self, method: str, path: str,
                       request: HttpRequest) -> tuple[int, dict]:
        parts = path.split("/")  # ['', 'v1', 'sessions', id, (action)]
        session_id = parts[3]
        action = parts[4] if len(parts) > 4 else None
        try:
            if action is None and method == "GET":
                return 200, self.registry.stats(session_id)
            if action == "stats" and method == "GET":
                return 200, self.registry.stats(session_id)
            if action == "join" and method == "POST":
                client = self._client_name(request)
                return 200, self.registry.join(session_id, client)
            if action == "leave" and method == "POST":
                client = self._client_name(request)
                return 200, self.registry.leave(session_id, client)
            if action == "kill" and method == "POST":
                record = self.registry.kill(session_id)
                return 202, {"session": session_id, "state": record.state}
        except SessionNotFound as error:
            raise HttpError(404, f"no session {session_id}") from error
        except LifecycleError as error:
            raise HttpError(409, str(error)) from error
        except ValueError as error:
            raise HttpError(409, str(error)) from error
        raise HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _client_name(request: HttpRequest) -> str:
        client = request.json().get("client")
        if not isinstance(client, str) or not client:
            raise HttpError(400, "body must carry a non-empty 'client' string")
        return client


class ServiceHandle:
    """The full service running on a background thread's event loop.

    The one start/stop path shared by ``repro serve``, the in-process
    load generator, and the tests::

        handle = ServiceHandle(ServiceConfig())
        handle.start()            # workers + HTTP listener
        ... drive http://handle.host:handle.port ...
        handle.stop()             # drains sessions, joins every thread
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.app = ServiceApp(self.config)
        self.host = self.config.host
        self.port = self.config.port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: HttpServer | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 30.0) -> "ServiceHandle":
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._run, name="service-http-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("service startup failed") from self._startup_error
        self.app.start_workers()
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._server = HttpServer(
            self.app.handle,
            host=self.config.host,
            port=self.config.port,
            metrics=self.app.metrics,
        )
        try:
            loop.run_until_complete(self._server.start())
        except BaseException as error:  # port in use, bad host, ...
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self.port = self._server.port
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._server.aclose())
            loop.close()

    def stop(self) -> None:
        """Stop HTTP, drain sessions, join threads; idempotent."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
