"""Session registry: lifecycle states, membership truth, audit log.

The control plane's single source of truth.  Every conferencing
session the service hosts is one :class:`SessionRecord` owned by the
:class:`SessionRegistry`; HTTP routes and the tick worker pool only
ever talk to sessions through it.

Lifecycle (one-way)::

    creating ──> running ──> draining ──> dead
        └──────────────────────┘

- **creating**: the record exists and has an id, but the media driver
  (sender, SFU node, downlinks) is still being built.  A kill arriving
  now wins the race: the create path observes the state flip and
  closes the freshly built driver instead of publishing it.
- **running**: the worker pool ticks the session every scheduling
  round; joins and leaves are accepted.
- **draining**: no more ticks; the worker pool reaps the record at the
  next boundary (closing its encoder workers) and moves it to dead.
  Both an operator ``kill`` and a crash mid-tick land here -- a broken
  session *degrades* into draining, it never takes the service down.
- **dead**: terminal.  ``stats`` keeps answering (a dead session's
  byte counters and error are exactly what an operator asks for), so
  clients polling a killed conference get 200 + ``state: dead``, not
  a 500.

Membership bookkeeping is registry-side (enqueue-time truth) while the
media-side joins/leaves are applied by the *worker* at the next tick
boundary through each record's op mailbox -- the control plane never
touches a driver concurrently with the tick loop, so drivers need no
locks of their own.

Every transition, join, leave, and failure appends to a bounded audit
log (the ``/audit`` route) and bumps ``service.*`` metrics.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "CREATING",
    "RUNNING",
    "DRAINING",
    "DEAD",
    "LifecycleError",
    "SessionNotFound",
    "SessionRecord",
    "SessionRegistry",
]

CREATING = "creating"
RUNNING = "running"
DRAINING = "draining"
DEAD = "dead"

STATES = (CREATING, RUNNING, DRAINING, DEAD)

# Legal state transitions; everything else is a programming error.
_TRANSITIONS = {
    CREATING: {RUNNING, DRAINING, DEAD},
    RUNNING: {DRAINING},
    DRAINING: {DEAD},
    DEAD: set(),
}

# Audit log bound: enough for a full load-generator run without
# growing without bound on a long-lived service.
_AUDIT_LIMIT = 50_000


class LifecycleError(RuntimeError):
    """An operation arrived in a state that cannot accept it."""


class SessionNotFound(KeyError):
    """No session with that id was ever created."""


@dataclass
class SessionRecord:
    """One hosted conference: lifecycle state + driver + bookkeeping."""

    session_id: str
    state: str
    scheme: str
    target_rate_bps: float
    seed: int
    created_at_s: float
    driver: object | None = None
    error: str | None = None
    frames_ticked: int = 0
    tick_seconds: float = 0.0
    joins: int = 0
    leaves: int = 0
    # Registry-side membership truth (enqueue time).  The driver's
    # receiver book follows by at most one tick boundary.
    clients: set = field(default_factory=set)
    # Membership ops awaiting application at the next tick boundary:
    # ("join"|"leave", client_name).
    pending_ops: list = field(default_factory=list)

    def stats(self) -> dict:
        """JSON stats payload; field names mirror ``SessionReport``
        (``scheme``, ``duration_s``, ``fps_target``) so dashboards can
        treat service sessions and offline reports uniformly."""
        driver = self.driver
        return {
            "session": self.session_id,
            "state": self.state,
            "scheme": self.scheme,
            "target_rate_bps": self.target_rate_bps,
            "seed": self.seed,
            "created_at_s": self.created_at_s,
            "frames_ticked": self.frames_ticked,
            "duration_s": self.frames_ticked / 30.0,
            "fps_target": 30.0,
            "tick_ms_mean": (
                1e3 * self.tick_seconds / self.frames_ticked
                if self.frames_ticked
                else 0.0
            ),
            "clients": sorted(self.clients),
            "joins": self.joins,
            "leaves": self.leaves,
            "pending_ops": len(self.pending_ops),
            "uplink_bytes": driver.uplink_bytes if driver is not None else 0,
            "downlink_bytes": driver.downlink_bytes if driver is not None else 0,
            "receiver_frames": driver.receiver_frames if driver is not None else 0,
            "error": self.error,
        }


class SessionRegistry:
    """Thread-safe owner of every session record.

    ``factory`` builds media drivers: a callable
    ``factory(index, seed, receivers, target_rate_bps) -> driver``
    where the driver exposes the :class:`~repro.sfu.conference.
    ConferenceDriver` surface (``join``/``leave``/``tick``/
    ``tick_steps``/``close``).  Driver construction happens *outside*
    the registry lock -- it renders and encodes nothing but does build
    encoder state, and create must not block joins to other sessions.
    """

    def __init__(self, factory, metrics=None, clock=time.monotonic,
                 max_clients_per_session: int = 64) -> None:
        from repro.obs.metrics import MetricsRegistry

        self._factory = factory
        self._clock = clock
        self._lock = threading.Lock()
        self._records: dict[str, SessionRecord] = {}
        self._serial = itertools.count()
        self._audit: deque = deque(maxlen=_AUDIT_LIMIT)
        self._audit_serial = itertools.count()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_clients_per_session = max_clients_per_session
        self._started_at = clock()

    # ------------------------------------------------------------------
    # Audit + metrics plumbing
    # ------------------------------------------------------------------

    def _audit_event(self, event: str, session_id: str, detail: str = "") -> None:
        self._audit.append(
            {
                "seq": next(self._audit_serial),
                "t_s": round(self._clock() - self._started_at, 6),
                "event": event,
                "session": session_id,
                "detail": detail,
            }
        )
        self.metrics.counter(f"service.audit.{event}").inc()

    def audit_log(self, limit: int = 100) -> list[dict]:
        """The most recent audit entries, oldest first."""
        with self._lock:
            entries = list(self._audit)
        return entries[-limit:]

    def _set_state(self, record: SessionRecord, state: str, detail: str = "") -> None:
        """Transition under the caller's lock; illegal moves raise."""
        if state not in _TRANSITIONS[record.state]:
            raise LifecycleError(
                f"session {record.session_id}: illegal transition "
                f"{record.state} -> {state}"
            )
        record.state = state
        self._audit_event(state, record.session_id, detail)

    # ------------------------------------------------------------------
    # Control-plane operations (HTTP routes call these)
    # ------------------------------------------------------------------

    def create(self, receivers: int = 0, seed: int | None = None,
               scheme: str = "livo-2m", target_rate_bps: float = 2e6,
               initial_clients: list[str] | None = None) -> SessionRecord:
        """Create a session; blocks until running (or dead if killed).

        The record is published in ``creating`` first, so a concurrent
        ``kill`` can target it; the driver is built outside the lock;
        the final transition honors any kill that raced in.
        """
        with self._lock:
            index = next(self._serial)
            session_id = f"s{index:05d}"
            record = SessionRecord(
                session_id=session_id,
                state=CREATING,
                scheme=scheme,
                target_rate_bps=float(target_rate_bps),
                seed=seed if seed is not None else index,
                created_at_s=self._clock() - self._started_at,
            )
            self._records[session_id] = record
            self._audit_event(CREATING, session_id, f"scheme={scheme}")
        names = list(initial_clients or [f"{session_id}r{j}" for j in range(receivers)])
        driver = self._factory(
            index=index,
            seed=record.seed,
            receivers=names,
            target_rate_bps=record.target_rate_bps,
        )
        with self._lock:
            if record.state == CREATING:
                record.driver = driver
                record.clients.update(names)
                record.joins += len(names)
                self._set_state(record, RUNNING)
                self.metrics.counter("service.sessions.created").inc()
                return record
        # A kill raced the build: we own an unpublished driver.  Close
        # it here (we are off the worker thread, nothing ticks it) and
        # finish the kill.
        driver.close()
        with self._lock:
            if record.state == DRAINING:
                self._set_state(record, DEAD, "killed during create")
            self.metrics.counter("service.sessions.killed_in_create").inc()
        return record

    def get(self, session_id: str) -> SessionRecord:
        with self._lock:
            record = self._records.get(session_id)
        if record is None:
            raise SessionNotFound(session_id)
        return record

    def join(self, session_id: str, client: str) -> dict:
        """Queue a client join; applied at the next tick boundary."""
        record = self.get(session_id)
        with self._lock:
            if record.state != RUNNING:
                raise LifecycleError(
                    f"session {session_id} is {record.state}, not joinable"
                )
            if client in record.clients:
                raise ValueError(f"client {client!r} already in {session_id}")
            if len(record.clients) >= self.max_clients_per_session:
                raise LifecycleError(f"session {session_id} is full")
            record.clients.add(client)
            record.joins += 1
            record.pending_ops.append(("join", client))
            self._audit_event("join", session_id, client)
        self.metrics.counter("service.joins").inc()
        return {"session": session_id, "client": client, "queued": True}

    def leave(self, session_id: str, client: str) -> dict:
        """Queue a client leave; applied at the next tick boundary."""
        record = self.get(session_id)
        with self._lock:
            if record.state not in (RUNNING, DRAINING):
                raise LifecycleError(
                    f"session {session_id} is {record.state}; nothing to leave"
                )
            if client not in record.clients:
                raise ValueError(f"client {client!r} not in {session_id}")
            record.clients.discard(client)
            record.leaves += 1
            if record.state == RUNNING:
                record.pending_ops.append(("leave", client))
            self._audit_event("leave", session_id, client)
        self.metrics.counter("service.leaves").inc()
        return {"session": session_id, "client": client, "queued": True}

    def kill(self, session_id: str, reason: str = "killed") -> SessionRecord:
        """Request teardown; idempotent.  The worker pool reaps it."""
        record = self.get(session_id)
        with self._lock:
            if record.state in (DRAINING, DEAD):
                return record
            self._set_state(record, DRAINING, reason)
            self.metrics.counter("service.sessions.killed").inc()
        return record

    def mark_failed(self, record: SessionRecord, error: BaseException) -> None:
        """A tick crashed: degrade the session, never the service."""
        with self._lock:
            if record.state in (DRAINING, DEAD):
                return
            record.error = f"{type(error).__name__}: {error}"
            self._set_state(record, DRAINING, record.error)
        self.metrics.counter("service.tick.errors").inc()
        self.metrics.counter("service.sessions.failed").inc()

    def stats(self, session_id: str) -> dict:
        record = self.get(session_id)
        with self._lock:
            return record.stats()

    def list_sessions(self) -> list[dict]:
        with self._lock:
            return [
                {"session": r.session_id, "state": r.state, "scheme": r.scheme,
                 "clients": len(r.clients), "frames_ticked": r.frames_ticked}
                for r in self._records.values()
            ]

    def counts(self) -> dict:
        """Sessions per state (healthz payload)."""
        with self._lock:
            tally = dict.fromkeys(STATES, 0)
            for record in self._records.values():
                tally[record.state] += 1
        return tally

    # ------------------------------------------------------------------
    # Worker-pool side
    # ------------------------------------------------------------------

    def running_records(self) -> list[SessionRecord]:
        """Records the next tick round should advance (id order)."""
        with self._lock:
            return [
                record
                for record in self._records.values()
                if record.state == RUNNING
            ]

    def draining_records(self) -> list[SessionRecord]:
        with self._lock:
            return [
                record
                for record in self._records.values()
                if record.state == DRAINING
            ]

    def take_pending_ops(self, record: SessionRecord) -> list[tuple]:
        """Drain a record's membership mailbox (tick boundary)."""
        with self._lock:
            ops, record.pending_ops = record.pending_ops, []
        return ops

    def reap(self, record: SessionRecord) -> None:
        """Close a draining session's driver and finalize it."""
        with self._lock:
            if record.state != DRAINING:
                return
        if record.driver is not None:
            record.driver.close()
        with self._lock:
            self._set_state(record, DEAD)
        self.metrics.counter("service.sessions.reaped").inc()

    def live_drivers(self) -> int:
        """Drivers not yet closed -- the leak gauge shutdown asserts on."""
        with self._lock:
            return sum(
                1
                for record in self._records.values()
                if record.driver is not None and not record.driver.closed
            )

    def close(self) -> None:
        """Kill and reap everything (service shutdown)."""
        with self._lock:
            records = list(self._records.values())
        for record in records:
            with self._lock:
                if record.state in (CREATING, RUNNING):
                    self._set_state(record, DRAINING, "service shutdown")
            self.reap(record)
