"""Session service: async control plane over the SFU conference driver.

The ROADMAP's "production-scale" north star as a running process:
``repro serve`` hosts conferencing sessions behind a REST-ish JSON API,
ticks them on a worker pool (co-scheduled through the cross-session
batch plane), and exposes metrics + audit.  ``repro loadgen`` drives it
with deterministic seeded churn and writes ``BENCH_service.json``.

Lazy exports keep ``import repro.service`` cheap; the numpy-heavy media
stack only loads when a session factory is built.
"""

from __future__ import annotations

_EXPORTS = {
    "SessionRegistry": "repro.service.registry",
    "SessionRecord": "repro.service.registry",
    "LifecycleError": "repro.service.registry",
    "SessionNotFound": "repro.service.registry",
    "TickWorkerPool": "repro.service.workers",
    "HttpServer": "repro.service.http",
    "JsonClient": "repro.service.http",
    "HttpError": "repro.service.http",
    "ServiceConfig": "repro.service.app",
    "ServiceApp": "repro.service.app",
    "ServiceHandle": "repro.service.app",
    "SessionFactory": "repro.service.app",
    "LoadgenConfig": "repro.service.loadgen",
    "LoadgenResult": "repro.service.loadgen",
    "build_schedule": "repro.service.loadgen",
    "run_loadgen": "repro.service.loadgen",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
