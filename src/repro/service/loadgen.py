"""Deterministic churn load generator for the session service.

Builds a seeded request schedule -- thousands of simulated clients
arriving, staying, and leaving across sessions pinned at mixed rate
tiers, with kill storms dropped on live sessions mid-run -- then fires
it at a service over HTTP through a bounded keep-alive connection
pool.  Same seed, same schedule, request for request: determinism is a
tested property (:func:`build_schedule` is pure), so a churn-survival
regression replays exactly.

Simulated time: the schedule is sliced into ``slot_s`` slots and each
slot's requests fire concurrently; the generator runs the slots as
fast as the service answers (wall-clock is the measurement, not the
pacing).  ``duration_s`` is therefore *simulated* seconds of schedule,
not wall seconds.

Survival accounting separates **casualties** from **failures**: a 404/
409 on a session a kill storm already tore down is the load generator
racing the operator -- expected, counted as ``churn_casualties``.  A
5xx is never expected (``errors_5xx`` must be 0: crashed sessions
degrade to ``state: dead``, they do not 500).

``run_loadgen`` hosts the service in-process by default (so it can
also assert the leak gauges: no live drivers, no stray shared-memory
segments) or targets an external ``--url``.  Writes
``BENCH_service.json`` via :func:`repro.service.loadgen.main`.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field

__all__ = [
    "LoadgenConfig",
    "LoadgenResult",
    "build_schedule",
    "run_loadgen",
    "main",
]

# Request ops a schedule slot can carry.  ``session`` fields are
# *logical* indices; the runner maps them to service-assigned ids from
# create responses.
OP_CREATE = "create"
OP_JOIN = "join"
OP_LEAVE = "leave"
OP_KILL = "kill"
OP_STATS = "stats"
OP_HEALTHZ = "healthz"

# Statuses that are churn casualties (not failures) once the target
# session was killed: the op raced the teardown.
_CASUALTY_STATUSES = {404, 409, 410}


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generator run."""

    clients: int = 1000
    receivers_per_session: int = 8
    duration_s: float = 10.0       # simulated seconds of schedule
    slot_s: float = 0.1
    seed: int = 0
    kill_storms: int = 1
    kill_fraction: float = 0.15    # of sessions per storm
    poll_every_slots: int = 5      # stats+healthz cadence
    pool: int = 16                 # HTTP connection pool size
    url: str | None = None         # target an external service instead

    def __post_init__(self) -> None:
        if self.clients <= 0 or self.receivers_per_session <= 0:
            raise ValueError("clients/receivers_per_session must be positive")
        if self.duration_s <= 0 or self.slot_s <= 0:
            raise ValueError("duration_s/slot_s must be positive")
        if not 0.0 <= self.kill_fraction <= 1.0:
            raise ValueError("kill_fraction must be in [0, 1]")


@dataclass
class LoadgenResult:
    """Aggregate outcome of one run (the BENCH_service payload)."""

    clients: int
    sessions: int
    slots: int
    requests_total: int
    wall_s: float
    requests_per_s: float
    status_counts: dict = field(default_factory=dict)
    errors_5xx: int = 0
    churn_casualties: int = 0
    kills_sent: int = 0
    joins_sent: int = 0
    leaves_sent: int = 0
    tick_ms_p50: float = 0.0
    tick_ms_p99: float = 0.0
    tick_ms_mean: float = 0.0
    ticks_total: int = 0
    sessions_failed: int = 0
    leaked_drivers: int = -1       # -1 = not checkable (external target)
    leaked_shm_segments: int = -1
    final_session_counts: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


def build_schedule(config: LoadgenConfig) -> list[list[dict]]:
    """The full request schedule, slot by slot; pure in ``config``.

    Each slot is a list of op dicts fired concurrently.  Only
    ``random.Random(seed)`` feeds the draw, so two builds from one
    config are equal element for element -- the determinism contract
    the regression test pins.
    """
    rng = random.Random(config.seed)
    num_slots = max(1, int(round(config.duration_s / config.slot_s)))
    num_sessions = math.ceil(config.clients / config.receivers_per_session)
    schemes = ["livo-1m", "livo-2m", "livo-4m"]
    slots: list[list[dict]] = [[] for _ in range(num_slots)]

    # Sessions open across the first fifth of the run, each at a rate
    # tier drawn from the mix.
    create_span = max(1, num_slots // 5)
    create_slot = {}
    for session in range(num_sessions):
        slot = rng.randrange(create_span)
        create_slot[session] = slot
        slots[slot].append(
            {"op": OP_CREATE, "session": session, "scheme": rng.choice(schemes)}
        )

    # Clients arrive after their session exists, stay a drawn number of
    # slots, and leave -- unless the run ends (or a storm lands) first.
    for client in range(config.clients):
        session = client // config.receivers_per_session
        earliest = create_slot[session] + 1
        if earliest >= num_slots:
            earliest = num_slots - 1
        arrival = rng.randrange(earliest, max(earliest + 1, num_slots // 2))
        name = f"c{client:05d}"
        slots[arrival].append({"op": OP_JOIN, "session": session, "client": name})
        stay = rng.randrange(1, num_slots)
        departure = arrival + stay
        if departure < num_slots:
            slots[departure].append(
                {"op": OP_LEAVE, "session": session, "client": name}
            )

    # Kill storms: each drops a deterministic sample of the sessions
    # still unkilled, spread across the back half of the run.
    unkilled = list(range(num_sessions))
    for storm in range(config.kill_storms):
        slot = int(num_slots * (storm + 1) / (config.kill_storms + 1))
        slot = min(max(slot, 1), num_slots - 1)
        count = max(1, int(len(unkilled) * config.kill_fraction))
        victims = rng.sample(unkilled, min(count, len(unkilled)))
        for session in victims:
            unkilled.remove(session)
            slots[slot].append({"op": OP_KILL, "session": session})

    # Observability traffic: periodic stats polls on a drawn session
    # plus a healthz, like a dashboard would.
    for slot in range(0, num_slots, max(1, config.poll_every_slots)):
        slots[slot].append(
            {"op": OP_STATS, "session": rng.randrange(num_sessions)}
        )
        slots[slot].append({"op": OP_HEALTHZ})

    return slots


class _Run:
    """Mutable state of one schedule execution."""

    def __init__(self, config: LoadgenConfig, client) -> None:
        self.config = config
        self.client = client
        self.session_ids: dict[int, str] = {}   # logical -> service id
        self.killed: set[int] = set()
        self.status_counts: dict[int, int] = {}
        self.requests = 0
        self.casualties = 0
        self.kills = self.joins = self.leaves = 0

    def _count(self, status: int, op: dict) -> None:
        self.requests += 1
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        if status in _CASUALTY_STATUSES and op["session"] in self.killed:
            self.casualties += 1

    async def _fire(self, op: dict) -> None:
        kind = op["op"]
        if kind == OP_HEALTHZ:
            status, _ = await self.client.request("GET", "/healthz")
            self.requests += 1
            self.status_counts[status] = self.status_counts.get(status, 0) + 1
            return
        if kind == OP_CREATE:
            status, payload = await self.client.request(
                "POST", "/v1/sessions", {"scheme": op["scheme"], "seed": op["session"]}
            )
            self.requests += 1
            self.status_counts[status] = self.status_counts.get(status, 0) + 1
            if status in (201, 410):
                self.session_ids[op["session"]] = payload["session"]
            return
        session_id = self.session_ids.get(op["session"])
        if session_id is None:  # create itself failed; count as casualty
            self.casualties += 1
            return
        if kind == OP_JOIN:
            self.joins += 1
            status, _ = await self.client.request(
                "POST", f"/v1/sessions/{session_id}/join", {"client": op["client"]}
            )
        elif kind == OP_LEAVE:
            self.leaves += 1
            status, _ = await self.client.request(
                "POST", f"/v1/sessions/{session_id}/leave", {"client": op["client"]}
            )
        elif kind == OP_KILL:
            self.kills += 1
            status, _ = await self.client.request(
                "POST", f"/v1/sessions/{session_id}/kill"
            )
            self.killed.add(op["session"])
        else:  # OP_STATS
            status, _ = await self.client.request(
                "GET", f"/v1/sessions/{session_id}/stats"
            )
        self._count(status, op)


async def _execute(config: LoadgenConfig, host: str, port: int,
                   schedule: list[list[dict]]) -> _Run:
    from repro.service.http import JsonClient

    client = JsonClient(host, port, pool=config.pool)
    run = _Run(config, client)
    try:
        for slot in schedule:
            # Creates first (joins in the same slot need the id), then
            # everything else concurrently -- the churn burst.
            creates = [op for op in slot if op["op"] == OP_CREATE]
            rest = [op for op in slot if op["op"] != OP_CREATE]
            if creates:
                await asyncio.gather(*(run._fire(op) for op in creates))
            if rest:
                await asyncio.gather(*(run._fire(op) for op in rest))
        # Teardown: kill whatever the storms spared, then wait for the
        # worker pool to reap every session.
        survivors = [
            s for s in sorted(run.session_ids) if s not in run.killed
        ]
        await asyncio.gather(
            *(
                run._fire({"op": OP_KILL, "session": s})
                for s in survivors
            )
        )
        for _ in range(500):
            status, payload = await client.request("GET", "/healthz")
            counts = payload.get("sessions", {})
            if counts.get("running", 0) == 0 and counts.get("draining", 0) == 0:
                break
            await asyncio.sleep(0.01)
        run.final_counts = counts
        status, run.metrics = await client.request("GET", "/metrics")
    finally:
        await client.aclose()
    return run


def _count_shm_segments() -> int:
    import os

    from repro.runtime.shm import SHM_NAME_PREFIX

    try:
        return sum(
            1 for name in os.listdir("/dev/shm") if name.startswith(SHM_NAME_PREFIX)
        )
    except OSError:  # no /dev/shm (non-Linux); skip the check
        return -1


def run_loadgen(config: LoadgenConfig, service_config=None) -> LoadgenResult:
    """Run the schedule against a service; in-process unless ``url``.

    In-process runs also verify the teardown invariants the issue
    demands: zero live drivers after stop and zero shared-memory
    segments leaked over the run.
    """
    schedule = build_schedule(config)
    num_sessions = math.ceil(config.clients / config.receivers_per_session)

    handle = None
    if config.url is None:
        from repro.service.app import ServiceConfig, ServiceHandle

        shm_before = _count_shm_segments()
        handle = ServiceHandle(service_config or ServiceConfig()).start()
        host, port = handle.host, handle.port
    else:
        from urllib.parse import urlsplit

        split = urlsplit(config.url)
        host, port = split.hostname, split.port or 80

    wall_start = time.perf_counter()
    try:
        run = asyncio.run(_execute(config, host, port, schedule))
    finally:
        wall_s = time.perf_counter() - wall_start
        leaked_drivers = leaked_shm = -1
        if handle is not None:
            handle.stop()
            leaked_drivers = handle.app.registry.live_drivers()
            shm_after = _count_shm_segments()
            leaked_shm = (
                shm_after - shm_before if shm_before >= 0 and shm_after >= 0 else -1
            )

    metrics = getattr(run, "metrics", {})
    tick = metrics.get("service.tick_ms", {})
    ticks = metrics.get("service.ticks", {})
    failed = metrics.get("service.sessions.failed", {})
    errors_5xx = sum(
        count for status, count in run.status_counts.items() if status >= 500
    )
    return LoadgenResult(
        clients=config.clients,
        sessions=num_sessions,
        slots=len(schedule),
        requests_total=run.requests,
        wall_s=round(wall_s, 3),
        requests_per_s=round(run.requests / wall_s, 1) if wall_s else 0.0,
        status_counts={str(k): v for k, v in sorted(run.status_counts.items())},
        errors_5xx=errors_5xx,
        churn_casualties=run.casualties,
        kills_sent=run.kills,
        joins_sent=run.joins,
        leaves_sent=run.leaves,
        tick_ms_p50=round(tick.get("p50", 0.0), 4),
        tick_ms_p99=round(tick.get("p99", 0.0), 4),
        tick_ms_mean=round(tick.get("mean", 0.0), 4),
        ticks_total=int(tick.get("count", ticks.get("value", 0) or 0)),
        sessions_failed=int(failed.get("value", 0)),
        leaked_drivers=leaked_drivers,
        leaked_shm_segments=leaked_shm,
        final_session_counts=getattr(run, "final_counts", {}),
    )


def main(argv=None) -> int:
    """CLI entry: ``python -m repro loadgen`` lands here."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Drive the session service with deterministic churn",
    )
    parser.add_argument("--clients", type=int, default=1000)
    parser.add_argument("--receivers-per-session", type=int, default=8)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="simulated seconds of schedule")
    parser.add_argument("--slot", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kill-storms", type=int, default=1)
    parser.add_argument("--kill-fraction", type=float, default=0.15)
    parser.add_argument("--url", default=None,
                        help="target an external service (default: in-process)")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--no-batch-plane", action="store_true")
    parser.add_argument(
        "--max-p99-ms", type=float, default=None,
        help="fail (exit 1) if session tick p99 exceeds this budget "
        "(the CI latency-regression gate)",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    config = LoadgenConfig(
        clients=args.clients,
        receivers_per_session=args.receivers_per_session,
        duration_s=args.duration,
        slot_s=args.slot,
        seed=args.seed,
        kill_storms=args.kill_storms,
        kill_fraction=args.kill_fraction,
        url=args.url,
    )
    service_config = None
    if args.url is None:
        from repro.service.app import ServiceConfig

        service_config = ServiceConfig(
            batch_plane=not args.no_batch_plane, jobs=args.jobs
        )
    result = run_loadgen(config, service_config)
    payload = {
        "bench": "service",
        "config": {
            "clients": config.clients,
            "receivers_per_session": config.receivers_per_session,
            "duration_s": config.duration_s,
            "slot_s": config.slot_s,
            "seed": config.seed,
            "kill_storms": config.kill_storms,
            "kill_fraction": config.kill_fraction,
            "url": config.url,
        },
        "result": result.to_dict(),
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"loadgen: {result.requests_total} requests in {result.wall_s}s "
        f"({result.requests_per_s}/s), tick p50={result.tick_ms_p50}ms "
        f"p99={result.tick_ms_p99}ms, 5xx={result.errors_5xx}, "
        f"casualties={result.churn_casualties}, "
        f"leaked drivers={result.leaked_drivers} "
        f"shm={result.leaked_shm_segments} -> {args.out}"
    )
    ok = result.errors_5xx == 0 and result.leaked_drivers in (-1, 0) and (
        result.leaked_shm_segments in (-1, 0)
    )
    if args.max_p99_ms is not None and result.tick_ms_p99 > args.max_p99_ms:
        print(
            f"loadgen: tick p99 {result.tick_ms_p99}ms exceeds budget "
            f"{args.max_p99_ms}ms"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
