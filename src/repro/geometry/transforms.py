"""Rigid 3D transforms.

All rotations follow the right-hand rule.  Euler angles use the intrinsic
XYZ (pitch, yaw, roll) convention and are expressed in radians.  Points are
stored as ``(N, 3)`` float arrays; homogeneous transforms as ``(4, 4)``
float64 matrices mapping column vectors (``p' = T @ p``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "euler_to_rotation",
    "rotation_to_euler",
    "make_transform",
    "invert_transform",
    "transform_points",
    "look_at",
]


def rotation_x(angle: float) -> np.ndarray:
    """Rotation matrix about the X axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def rotation_y(angle: float) -> np.ndarray:
    """Rotation matrix about the Y axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotation_z(angle: float) -> np.ndarray:
    """Rotation matrix about the Z axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def euler_to_rotation(pitch: float, yaw: float, roll: float) -> np.ndarray:
    """Build a rotation matrix from intrinsic XYZ Euler angles.

    ``R = Rx(pitch) @ Ry(yaw) @ Rz(roll)``.  This is the convention used
    for headset poses throughout the reproduction (paper section 3.4
    tracks position and orientation as 6 scalar dimensions).
    """
    return rotation_x(pitch) @ rotation_y(yaw) @ rotation_z(roll)


def rotation_to_euler(rotation: np.ndarray) -> tuple[float, float, float]:
    """Recover intrinsic XYZ Euler angles from a rotation matrix.

    Inverse of :func:`euler_to_rotation`.  Returns ``(pitch, yaw, roll)``
    in radians.  At the gimbal-lock singularity (``|R[0, 2]| == 1``) roll
    is set to zero and the remaining freedom is absorbed into pitch.
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    sy = np.clip(rotation[0, 2], -1.0, 1.0)
    yaw = float(np.arcsin(sy))
    if abs(sy) < 1.0 - 1e-9:
        pitch = float(np.arctan2(-rotation[1, 2], rotation[2, 2]))
        roll = float(np.arctan2(-rotation[0, 1], rotation[0, 0]))
    else:
        pitch = float(np.arctan2(rotation[1, 0], rotation[1, 1]))
        roll = 0.0
    return pitch, yaw, roll


def make_transform(rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
    """Assemble a 4x4 homogeneous transform from R (3x3) and t (3,)."""
    transform = np.eye(4)
    transform[:3, :3] = rotation
    transform[:3, 3] = np.asarray(translation, dtype=np.float64)
    return transform


def invert_transform(transform: np.ndarray) -> np.ndarray:
    """Invert a rigid homogeneous transform without a general inverse.

    Exploits orthonormality of the rotation block, which is both faster
    and numerically safer than ``np.linalg.inv``.
    """
    rotation = transform[:3, :3]
    translation = transform[:3, 3]
    inverse = np.eye(4)
    inverse[:3, :3] = rotation.T
    inverse[:3, 3] = -rotation.T @ translation
    return inverse


def transform_points(transform: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 homogeneous transform to an ``(N, 3)`` point array."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got shape {points.shape}")
    return points @ transform[:3, :3].T + transform[:3, 3]


def look_at(eye: np.ndarray, target: np.ndarray, up: np.ndarray | None = None) -> np.ndarray:
    """Camera-to-world transform for a camera at ``eye`` looking at ``target``.

    Follows the computer-vision convention: camera +Z points toward the
    target (forward), +X right, +Y down.  Used to aim the simulated
    RGB-D cameras at the scene center.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if up is None:
        up = np.array([0.0, 1.0, 0.0])
    up = np.asarray(up, dtype=np.float64)

    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ValueError("eye and target coincide; cannot derive a view direction")
    forward = forward / norm

    right = np.cross(forward, up)
    norm = np.linalg.norm(right)
    if norm < 1e-9:
        # Forward is parallel to up; pick an arbitrary perpendicular axis.
        fallback = np.array([1.0, 0.0, 0.0])
        right = np.cross(forward, fallback)
        norm = np.linalg.norm(right)
    right = right / norm
    down = np.cross(forward, right)

    rotation = np.stack([right, down, forward], axis=1)
    return make_transform(rotation, eye)
