"""Point cloud container.

A point cloud is the canonical per-frame 3D representation in the paper:
each point has a position (geometry, meters) and an RGB color (uint8).
The class is a thin, validated wrapper over two NumPy arrays so that all
hot paths stay vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import transform_points

__all__ = ["PointCloud"]


@dataclass
class PointCloud:
    """A colored point cloud.

    Attributes:
        positions: ``(N, 3)`` float64 array of XYZ coordinates in meters.
        colors: ``(N, 3)`` uint8 array of RGB colors.
    """

    positions: np.ndarray = field(default_factory=lambda: np.zeros((0, 3)))
    colors: np.ndarray = field(default_factory=lambda: np.zeros((0, 3), dtype=np.uint8))

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.colors = np.asarray(self.colors, dtype=np.uint8)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {self.positions.shape}")
        if self.colors.ndim != 2 or self.colors.shape[1] != 3:
            raise ValueError(f"colors must be (N, 3), got {self.colors.shape}")
        if len(self.positions) != len(self.colors):
            raise ValueError(
                f"positions ({len(self.positions)}) and colors ({len(self.colors)}) "
                "must have the same length"
            )

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def num_points(self) -> int:
        """Number of points."""
        return len(self.positions)

    @property
    def is_empty(self) -> bool:
        """True when the cloud has no points."""
        return len(self.positions) == 0

    def raw_size_bytes(self) -> int:
        """Uncompressed wire size: 3 float32 positions + 3 uint8 colors.

        This matches how the paper sizes raw frames (about 10 MB for a
        full-scene frame, Table 3): 15 bytes per point.
        """
        return self.num_points * (3 * 4 + 3)

    def select(self, mask: np.ndarray) -> "PointCloud":
        """Return a new cloud containing only points where ``mask`` is True."""
        mask = np.asarray(mask)
        return PointCloud(self.positions[mask], self.colors[mask])

    def transformed(self, transform: np.ndarray) -> "PointCloud":
        """Return a copy with positions mapped through a 4x4 transform."""
        if self.is_empty:
            return PointCloud(self.positions.copy(), self.colors.copy())
        return PointCloud(transform_points(transform, self.positions), self.colors.copy())

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box as ``(min_xyz, max_xyz)``."""
        if self.is_empty:
            zero = np.zeros(3)
            return zero, zero
        return self.positions.min(axis=0), self.positions.max(axis=0)

    def copy(self) -> "PointCloud":
        """Deep copy."""
        return PointCloud(self.positions.copy(), self.colors.copy())

    @staticmethod
    def merge(clouds: list["PointCloud"]) -> "PointCloud":
        """Concatenate several clouds into one.

        Used by the receiver when fusing per-camera unprojections into
        the full reconstructed scene (paper appendix A.1).
        """
        non_empty = [c for c in clouds if not c.is_empty]
        if not non_empty:
            return PointCloud()
        return PointCloud(
            np.concatenate([c.positions for c in non_empty], axis=0),
            np.concatenate([c.colors for c in non_empty], axis=0),
        )
