"""Viewing frustum: the receiver's 3D field of view.

Paper section 3.4: "A frustum is a 3D truncated pyramid defined by six
planes -- near, far, top, bottom, left, and right -- whose plane normals
point inwards.  P is outside the frustum if distance of the point from
either of the six planes is positive [with outward normals]."

We store inward-pointing normals, so a point is inside when its signed
distance to every plane is >= 0.  The frustum is built from a viewer pose
(position + orientation) and the viewing-device parameters (vertical FoV,
aspect ratio, near/far), exactly the values a headset reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Plane", "Frustum"]


@dataclass(frozen=True)
class Plane:
    """Oriented plane ``normal . x + offset = 0`` with unit normal."""

    normal: np.ndarray
    offset: float

    def __post_init__(self) -> None:
        normal = np.asarray(self.normal, dtype=np.float64)
        norm = np.linalg.norm(normal)
        if norm < 1e-12:
            raise ValueError("plane normal must be nonzero")
        object.__setattr__(self, "normal", normal / norm)
        object.__setattr__(self, "offset", float(self.offset) / norm)

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        """Signed distance of ``(N, 3)`` points; positive on the normal side."""
        return np.asarray(points, dtype=np.float64) @ self.normal + self.offset

    def translated(self, delta: float) -> "Plane":
        """Plane moved ``delta`` meters along its (inward) normal.

        Negative ``delta`` moves the plane outward, enlarging the frustum;
        this implements LiVo's guard band (section 3.4).
        """
        return Plane(self.normal.copy(), self.offset - delta)

    def transformed(self, transform: np.ndarray) -> "Plane":
        """Plane mapped through a rigid 4x4 transform.

        For a rigid transform T, the plane (n, d) maps to (R n, d - (R n).t).
        """
        rotation = transform[:3, :3]
        translation = transform[:3, 3]
        new_normal = rotation @ self.normal
        new_offset = self.offset - float(new_normal @ translation)
        return Plane(new_normal, new_offset)


class Frustum:
    """Six-plane truncated viewing pyramid with inward normals."""

    PLANE_NAMES = ("near", "far", "left", "right", "top", "bottom")

    def __init__(self, planes: list[Plane]) -> None:
        if len(planes) != 6:
            raise ValueError(f"a frustum has exactly 6 planes, got {len(planes)}")
        self.planes = list(planes)

    @staticmethod
    def from_camera(
        position: np.ndarray,
        rotation: np.ndarray,
        vertical_fov_deg: float = 60.0,
        aspect: float = 16.0 / 9.0,
        near_m: float = 0.1,
        far_m: float = 10.0,
    ) -> "Frustum":
        """Build a frustum from a viewer pose and device parameters.

        ``rotation`` maps viewer-local axes to world axes; viewer-local +Z
        is the view direction, +X right, +Y down (computer-vision
        convention, consistent with :mod:`repro.geometry.camera`).
        """
        if not 0 < vertical_fov_deg < 180:
            raise ValueError("vertical_fov_deg must be in (0, 180)")
        if not 0 < near_m < far_m:
            raise ValueError("require 0 < near_m < far_m")
        position = np.asarray(position, dtype=np.float64)
        rotation = np.asarray(rotation, dtype=np.float64)
        right = rotation[:, 0]
        down = rotation[:, 1]
        forward = rotation[:, 2]

        half_v = np.deg2rad(vertical_fov_deg) / 2.0
        tan_v = np.tan(half_v)
        tan_h = tan_v * aspect

        def plane_through_eye(normal: np.ndarray) -> Plane:
            # Inward normal passing through the eye position.
            return Plane(normal, -float(normal @ position))

        near = Plane(forward, -float(forward @ (position + forward * near_m)))
        far = Plane(-forward, float(forward @ (position + forward * far_m)))
        # Side planes contain the eye; normals tilt inward by the half angle.
        left = plane_through_eye(_normalize(forward * tan_h + right))
        right_pl = plane_through_eye(_normalize(forward * tan_h - right))
        top = plane_through_eye(_normalize(forward * tan_v + down))
        bottom = plane_through_eye(_normalize(forward * tan_v - down))
        return Frustum([near, far, left, right_pl, top, bottom])

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask: True for points inside or on the frustum.

        Vectorized six-plane test -- the core of LiVo's culling.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        inside = np.ones(len(points), dtype=bool)
        for plane in self.planes:
            inside &= plane.signed_distance(points) >= 0.0
            if not inside.any():
                break
        return inside

    def contains_grid(self, points: np.ndarray) -> np.ndarray:
        """Like :meth:`contains` but for an ``(H, W, 3)`` pixel-point grid.

        Used by RGB-D view culling: points are camera-local pixel
        back-projections and the frustum has been transformed into the
        camera's local frame (section 3.4).
        """
        points = np.asarray(points, dtype=np.float64)
        flat = points.reshape(-1, 3)
        return self.contains(flat).reshape(points.shape[:2])

    def expanded(self, guard_band_m: float) -> "Frustum":
        """Frustum enlarged by moving every plane outward by ``guard_band_m``.

        Implements the paper's guard band (default 20 cm) that absorbs
        pose-prediction error (section 3.4, Fig. 15).
        """
        if guard_band_m < 0:
            raise ValueError("guard_band_m must be non-negative")
        return Frustum([plane.translated(-guard_band_m) for plane in self.planes])

    def transformed(self, transform: np.ndarray) -> "Frustum":
        """Frustum mapped through a rigid 4x4 transform.

        LiVo transforms the (world-frame) frustum into each camera's
        local coordinate system once per frame, then tests pixels locally.
        """
        return Frustum([plane.transformed(transform) for plane in self.planes])


def _normalize(vector: np.ndarray) -> np.ndarray:
    return vector / np.linalg.norm(vector)
