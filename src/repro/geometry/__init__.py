"""Geometry substrate: point clouds, cameras, frustums, transforms.

This package provides the 3D primitives every other part of the LiVo
reproduction builds on:

- :mod:`repro.geometry.transforms` -- rigid transforms (rotation matrices,
  Euler angles, 4x4 homogeneous matrices).
- :mod:`repro.geometry.camera` -- pinhole camera model with intrinsics
  and extrinsics, projection and unprojection.
- :mod:`repro.geometry.pointcloud` -- the point cloud container used as
  the canonical 3D frame representation.
- :mod:`repro.geometry.frustum` -- the six-plane viewing frustum used by
  LiVo's view culling (paper section 3.4).
- :mod:`repro.geometry.voxel` -- voxel-grid downsampling used by the
  receiver-side renderer (paper appendix A.1).
"""

from repro.geometry.camera import CameraExtrinsics, CameraIntrinsics, RGBDCamera
from repro.geometry.frustum import Frustum, Plane
from repro.geometry.pointcloud import PointCloud
from repro.geometry.transforms import (
    euler_to_rotation,
    look_at,
    rotation_to_euler,
    transform_points,
)
from repro.geometry.voxel import voxel_downsample

__all__ = [
    "CameraExtrinsics",
    "CameraIntrinsics",
    "RGBDCamera",
    "Frustum",
    "Plane",
    "PointCloud",
    "euler_to_rotation",
    "look_at",
    "rotation_to_euler",
    "transform_points",
    "voxel_downsample",
]
