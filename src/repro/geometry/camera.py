"""Pinhole RGB-D camera model.

Models the commodity RGB-D cameras the paper builds on (Azure Kinect DK,
Kinect v2, Intel RealSense): a pinhole intrinsic model at the *depth*
resolution (LiVo downsamples color to depth resolution before tiling,
paper section 3.2), plus a rigid extrinsic pose produced by one-shot
calibration (Zhang's method in the paper; exact by construction here).

The two key vectorized operations are:

- :meth:`RGBDCamera.unproject` -- depth image -> local/world point cloud
  (receiver-side reconstruction, appendix A.1);
- :meth:`RGBDCamera.project` -- world points -> pixel coordinates
  (sender-side synthetic capture and culling tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.pointcloud import PointCloud
from repro.geometry.transforms import invert_transform, look_at, transform_points

__all__ = ["CameraIntrinsics", "CameraExtrinsics", "RGBDCamera", "unproject_views"]

# Kinect-class depth cameras sense roughly 0.25 m to 6 m (paper section 3.2:
# "maximum depth range of 5-6 meters ... depth values can range 0-6000 at
# millimeter resolution").
DEFAULT_MIN_DEPTH_M = 0.25
DEFAULT_MAX_DEPTH_M = 6.0


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics at depth resolution.

    Attributes:
        width: image width in pixels.
        height: image height in pixels.
        fx, fy: focal lengths in pixels.
        cx, cy: principal point in pixels.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")

    @staticmethod
    def from_fov(width: int, height: int, horizontal_fov_deg: float = 75.0) -> "CameraIntrinsics":
        """Derive intrinsics from a horizontal field of view.

        Kinect v2's depth camera has roughly a 70-75 degree horizontal FoV.
        """
        fx = (width / 2.0) / np.tan(np.deg2rad(horizontal_fov_deg) / 2.0)
        # Square pixels: fy = fx.
        return CameraIntrinsics(
            width=width,
            height=height,
            fx=float(fx),
            fy=float(fx),
            cx=width / 2.0,
            cy=height / 2.0,
        )

    @property
    def aspect(self) -> float:
        """Width/height aspect ratio."""
        return self.width / self.height

    def pixel_rays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-pixel ray direction factors ``(x/z, y/z)`` as (H, W) arrays.

        Cached-free helper: for pixel (u, v) and depth z, the camera-local
        point is ``(z * xf[v, u], z * yf[v, u], z)``.
        """
        u = np.arange(self.width, dtype=np.float64)
        v = np.arange(self.height, dtype=np.float64)
        uu, vv = np.meshgrid(u, v)
        x_factor = (uu - self.cx) / self.fx
        y_factor = (vv - self.cy) / self.fy
        return x_factor, y_factor


@dataclass(frozen=True)
class CameraExtrinsics:
    """Camera pose: a camera-to-world rigid transform."""

    camera_to_world: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.camera_to_world, dtype=np.float64)
        if matrix.shape != (4, 4):
            raise ValueError(f"camera_to_world must be 4x4, got {matrix.shape}")
        object.__setattr__(self, "camera_to_world", matrix)

    @property
    def world_to_camera(self) -> np.ndarray:
        """Inverse transform (world coordinates -> camera-local)."""
        return invert_transform(self.camera_to_world)

    @property
    def position(self) -> np.ndarray:
        """Camera center in world coordinates."""
        return self.camera_to_world[:3, 3]


class RGBDCamera:
    """A calibrated RGB-D camera: intrinsics + extrinsics + depth range."""

    def __init__(
        self,
        intrinsics: CameraIntrinsics,
        extrinsics: CameraExtrinsics,
        min_depth_m: float = DEFAULT_MIN_DEPTH_M,
        max_depth_m: float = DEFAULT_MAX_DEPTH_M,
        camera_id: int = 0,
    ) -> None:
        if not 0 < min_depth_m < max_depth_m:
            raise ValueError("require 0 < min_depth_m < max_depth_m")
        self.intrinsics = intrinsics
        self.extrinsics = extrinsics
        self.min_depth_m = float(min_depth_m)
        self.max_depth_m = float(max_depth_m)
        self.camera_id = int(camera_id)
        self._x_factor, self._y_factor = intrinsics.pixel_rays()

    @staticmethod
    def looking_at(
        eye: np.ndarray,
        target: np.ndarray,
        intrinsics: CameraIntrinsics,
        camera_id: int = 0,
        max_depth_m: float = DEFAULT_MAX_DEPTH_M,
    ) -> "RGBDCamera":
        """Convenience constructor: camera at ``eye`` aimed at ``target``."""
        return RGBDCamera(
            intrinsics,
            CameraExtrinsics(look_at(eye, target)),
            camera_id=camera_id,
            max_depth_m=max_depth_m,
        )

    # ------------------------------------------------------------------
    # Projection / unprojection
    # ------------------------------------------------------------------

    def unproject(
        self,
        depth_mm: np.ndarray,
        color: np.ndarray | None = None,
        to_world: bool = True,
    ) -> PointCloud:
        """Convert a depth image (uint16 millimeters) into a point cloud.

        Zero-depth pixels (invalid / culled) are skipped, as in the Azure
        Kinect SDK.  When ``color`` is given it must be an ``(H, W, 3)``
        uint8 image pixel-aligned with the depth image.
        """
        depth_mm = np.asarray(depth_mm)
        if depth_mm.shape != (self.intrinsics.height, self.intrinsics.width):
            raise ValueError(
                f"depth shape {depth_mm.shape} does not match intrinsics "
                f"({self.intrinsics.height}, {self.intrinsics.width})"
            )
        valid = depth_mm > 0
        z = depth_mm[valid].astype(np.float64) / 1000.0
        x = self._x_factor[valid] * z
        y = self._y_factor[valid] * z
        local = np.stack([x, y, z], axis=1)
        positions = (
            transform_points(self.extrinsics.camera_to_world, local) if to_world else local
        )
        if color is not None:
            colors = np.asarray(color)[valid]
        else:
            colors = np.zeros((len(positions), 3), dtype=np.uint8)
        return PointCloud(positions, colors)

    def local_points(self, depth_mm: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Camera-local 3D coordinates for *every* pixel of a depth image.

        Returns ``(points, valid)`` where ``points`` is ``(H, W, 3)`` float64
        and ``valid`` is the boolean mask of nonzero-depth pixels.  Used by
        LiVo's RGB-D culling, which tests pixels against the frustum in
        camera-local coordinates without building a point cloud
        (paper section 3.4).
        """
        depth_mm = np.asarray(depth_mm)
        z = depth_mm.astype(np.float64) / 1000.0
        points = np.stack([self._x_factor * z, self._y_factor * z, z], axis=-1)
        return points, depth_mm > 0

    def project(self, world_points: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project world points into the image.

        Returns ``(u, v, z)`` arrays: integer pixel coordinates and
        camera-local depth in meters.  Points behind the camera or outside
        the image are *not* filtered here; callers apply their own masks.
        """
        local = transform_points(self.extrinsics.world_to_camera, world_points)
        z = local[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = np.where(z > 0, local[:, 0] / z * self.intrinsics.fx + self.intrinsics.cx, -1.0)
            v = np.where(z > 0, local[:, 1] / z * self.intrinsics.fy + self.intrinsics.cy, -1.0)
        return u, v, z

    def in_image(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Mask of pixel coordinates that land inside the image."""
        return (u >= 0) & (u < self.intrinsics.width) & (v >= 0) & (v < self.intrinsics.height)


def unproject_views(
    cameras: list[RGBDCamera],
    depth_images: list[np.ndarray],
    color_images: list[np.ndarray] | None = None,
) -> PointCloud:
    """Unproject many cameras' depth images into one merged world cloud.

    Structure-of-arrays twin of the per-camera loop
    ``PointCloud.merge([camera.unproject(depth, color) for ...])`` --
    bit-identical by construction.  When every camera shares the same
    intrinsics (the rig's common case), the valid masks, depth scaling,
    and ray-factor multiplies run over one ``(C, H, W)`` stack, so the
    whole rig unprojects in a handful of numpy calls; only the rigid
    per-camera transform still runs per camera (each has its own pose).
    Each camera's points land in a preallocated slice of the output, in
    the same camera order the merge would concatenate, skipping the
    intermediate per-camera clouds and their extra copies.
    """
    cameras = list(cameras)
    depth_images = [np.asarray(depth) for depth in depth_images]
    count = min(len(cameras), len(depth_images))
    cameras = cameras[:count]
    depth_images = depth_images[:count]
    for camera, depth in zip(cameras, depth_images):
        if depth.shape != (camera.intrinsics.height, camera.intrinsics.width):
            raise ValueError(
                f"depth shape {depth.shape} does not match intrinsics "
                f"({camera.intrinsics.height}, {camera.intrinsics.width})"
            )
    if not cameras:
        return PointCloud()

    shared = all(
        camera.intrinsics == cameras[0].intrinsics for camera in cameras[1:]
    )
    if shared:
        # One stacked pass for the intrinsic half.  The boolean index
        # flattens camera-major (C-order), which is exactly the order
        # the per-camera merge concatenates.
        depth_stack = np.stack(depth_images)
        valid = depth_stack > 0
        counts = valid.reshape(count, -1).sum(axis=1)
        z = depth_stack[valid].astype(np.float64) / 1000.0
        x_factor = np.broadcast_to(cameras[0]._x_factor, depth_stack.shape)
        y_factor = np.broadcast_to(cameras[0]._y_factor, depth_stack.shape)
        x = x_factor[valid] * z
        y = y_factor[valid] * z
        local = np.stack([x, y, z], axis=1)
        positions = np.empty_like(local)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        for index, camera in enumerate(cameras):
            segment = slice(offsets[index], offsets[index + 1])
            positions[segment] = transform_points(
                camera.extrinsics.camera_to_world, local[segment]
            )
        if color_images is not None:
            colors = np.stack([np.asarray(c) for c in color_images[:count]])[valid]
        else:
            colors = np.zeros((len(positions), 3), dtype=np.uint8)
        return PointCloud(positions, colors)

    # Mixed-intrinsics rig: per-camera math, still into one output.
    masks = [depth > 0 for depth in depth_images]
    counts = [int(mask.sum()) for mask in masks]
    total = int(sum(counts))
    positions = np.empty((total, 3))
    colors = np.zeros((total, 3), dtype=np.uint8)
    start = 0
    for index, (camera, depth, mask) in enumerate(zip(cameras, depth_images, masks)):
        stop = start + counts[index]
        z = depth[mask].astype(np.float64) / 1000.0
        x = camera._x_factor[mask] * z
        y = camera._y_factor[mask] * z
        local = np.stack([x, y, z], axis=1)
        positions[start:stop] = transform_points(
            camera.extrinsics.camera_to_world, local
        )
        if color_images is not None:
            colors[start:stop] = np.asarray(color_images[index])[mask]
        start = stop
    return PointCloud(positions, colors)


def ring_of_cameras(
    num_cameras: int,
    radius_m: float,
    height_m: float,
    intrinsics: CameraIntrinsics,
    target: np.ndarray | None = None,
    max_depth_m: float = DEFAULT_MAX_DEPTH_M,
) -> list[RGBDCamera]:
    """Place ``num_cameras`` in a circle aimed at a common target.

    This is the paper's deployment model: "an array of off-the-shelf RGB-D
    cameras encircling a scene" (section 3.1), e.g. the 10 Kinect v2
    cameras of the Panoptic dataset.
    """
    if num_cameras <= 0:
        raise ValueError("num_cameras must be positive")
    if target is None:
        target = np.array([0.0, 1.0, 0.0])
    cameras = []
    for index in range(num_cameras):
        angle = 2.0 * np.pi * index / num_cameras
        eye = np.array([radius_m * np.cos(angle), height_m, radius_m * np.sin(angle)])
        cameras.append(
            RGBDCamera.looking_at(
                eye, target, intrinsics, camera_id=index, max_depth_m=max_depth_m
            )
        )
    return cameras
