"""Voxel-grid downsampling.

The LiVo receiver voxelizes the reconstructed point cloud before
rendering to bound rendering cost (paper appendix A.1, following ViVo
and GROOT).  One representative point survives per occupied voxel, with
the voxel's mean color.

Fast path: grouping key triplets with ``np.unique(keys, axis=0)`` views
the rows as a structured dtype and sorts them row-wise, which is the
single most expensive kernel on the receive side (it runs two or three
times per quality sample).  When every key component fits a 21-bit
budget -- always true for room-scale scenes at centimeter voxels -- the
three components are packed into one ``int64`` whose integer order
equals the lexicographic order of the triplets, so a plain 1-D
``np.unique`` yields the *identical* ``inverse``/``counts`` arrays an
order of magnitude faster.  Per-voxel sums then use ``np.bincount``,
which accumulates in the same input order as ``np.add.at`` and is
therefore bit-identical (both are sequential C loops over the input).
Clouds that overflow the bit budget fall back to the row-wise path.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.pointcloud import PointCloud

__all__ = ["voxel_downsample", "voxel_occupancy"]

# Per-component bit budget for the packed-key fast path: signed 21-bit
# voxel indices cover +-2^20 voxels per axis (a ~31 km span at 3 cm
# voxels) and three of them fill an int64 with a sign bit to spare.
_KEY_BITS = 21
_KEY_LIMIT = np.int64(1) << (_KEY_BITS - 1)


def voxel_keys(positions: np.ndarray, voxel_size_m: float) -> np.ndarray:
    """Integer voxel index triplets for each point."""
    if voxel_size_m <= 0:
        raise ValueError("voxel_size_m must be positive")
    return np.floor(np.asarray(positions, dtype=np.float64) / voxel_size_m).astype(np.int64)


def _packed_keys(keys: np.ndarray) -> np.ndarray | None:
    """Pack key triplets into order-preserving int64 scalars.

    Returns None when any component overflows the per-axis budget (the
    caller falls back to the row-wise grouping).  Offsetting by the
    limit makes each component non-negative, so the packed integers
    sort exactly like the original triplets sort lexicographically.
    """
    if len(keys) and np.abs(keys).max() >= _KEY_LIMIT:
        return None
    shifted = keys + _KEY_LIMIT
    return (
        (shifted[:, 0] << (2 * _KEY_BITS))
        | (shifted[:, 1] << _KEY_BITS)
        | shifted[:, 2]
    )


def _group_voxels(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group key triplets: ``(inverse, counts)`` of the sorted-unique keys.

    The packed fast path and the ``axis=0`` reference produce identical
    arrays (asserted in tests/test_perf_fastpath.py); only the grouping
    kernel differs.
    """
    packed = _packed_keys(keys)
    if packed is None:
        _, inverse, counts = np.unique(
            keys, axis=0, return_inverse=True, return_counts=True
        )
        return inverse, counts
    _, inverse, counts = np.unique(packed, return_inverse=True, return_counts=True)
    return inverse, counts


def _segment_sums(
    inverse: np.ndarray, values: np.ndarray, num_voxels: int
) -> np.ndarray:
    """Per-voxel column sums, accumulated in input order.

    ``np.bincount`` adds weights sequentially over the input exactly as
    ``np.add.at`` does, so per-bucket float accumulation order -- and
    with it every low bit of the sums -- is preserved.
    """
    sums = np.empty((num_voxels, values.shape[1]))
    for column in range(values.shape[1]):
        sums[:, column] = np.bincount(
            inverse, weights=values[:, column], minlength=num_voxels
        )
    return sums


def voxel_downsample(cloud: PointCloud, voxel_size_m: float) -> PointCloud:
    """Downsample a cloud to one point per occupied voxel.

    The surviving point is the centroid of the voxel's points and its
    color the (rounded) mean color, matching Open3D's
    ``voxel_down_sample`` semantics that the paper's receiver uses.
    """
    if cloud.is_empty:
        return cloud.copy()
    keys = voxel_keys(cloud.positions, voxel_size_m)
    inverse, counts = _group_voxels(keys)
    num_voxels = len(counts)

    centroids = _segment_sums(inverse, cloud.positions, num_voxels) / counts[:, None]
    color_sums = _segment_sums(inverse, cloud.colors.astype(np.float64), num_voxels)
    mean_colors = np.clip(np.rint(color_sums / counts[:, None]), 0, 255).astype(np.uint8)

    return PointCloud(centroids, mean_colors)


def voxel_occupancy(cloud: PointCloud, voxel_size_m: float) -> set[tuple[int, int, int]]:
    """Set of occupied voxel indices; used by quality metrics and tests."""
    if cloud.is_empty:
        return set()
    keys = voxel_keys(cloud.positions, voxel_size_m)
    return {tuple(row) for row in np.unique(keys, axis=0)}
