"""Voxel-grid downsampling.

The LiVo receiver voxelizes the reconstructed point cloud before
rendering to bound rendering cost (paper appendix A.1, following ViVo
and GROOT).  One representative point survives per occupied voxel, with
the voxel's mean color.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.pointcloud import PointCloud

__all__ = ["voxel_downsample", "voxel_occupancy"]


def voxel_keys(positions: np.ndarray, voxel_size_m: float) -> np.ndarray:
    """Integer voxel index triplets for each point."""
    if voxel_size_m <= 0:
        raise ValueError("voxel_size_m must be positive")
    return np.floor(np.asarray(positions, dtype=np.float64) / voxel_size_m).astype(np.int64)


def voxel_downsample(cloud: PointCloud, voxel_size_m: float) -> PointCloud:
    """Downsample a cloud to one point per occupied voxel.

    The surviving point is the centroid of the voxel's points and its
    color the (rounded) mean color, matching Open3D's
    ``voxel_down_sample`` semantics that the paper's receiver uses.
    """
    if cloud.is_empty:
        return cloud.copy()
    keys = voxel_keys(cloud.positions, voxel_size_m)
    # Group points by voxel via lexicographic sort of the key triplets.
    _, inverse, counts = np.unique(keys, axis=0, return_inverse=True, return_counts=True)
    num_voxels = len(counts)

    sums = np.zeros((num_voxels, 3))
    np.add.at(sums, inverse, cloud.positions)
    centroids = sums / counts[:, None]

    color_sums = np.zeros((num_voxels, 3))
    np.add.at(color_sums, inverse, cloud.colors.astype(np.float64))
    mean_colors = np.clip(np.rint(color_sums / counts[:, None]), 0, 255).astype(np.uint8)

    return PointCloud(centroids, mean_colors)


def voxel_occupancy(cloud: PointCloud, voxel_size_m: float) -> set[tuple[int, int, int]]:
    """Set of occupied voxel indices; used by quality metrics and tests."""
    if cloud.is_empty:
        return set()
    keys = voxel_keys(cloud.positions, voxel_size_m)
    return {tuple(row) for row in np.unique(keys, axis=0)}
