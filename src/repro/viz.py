"""Artifact export: images and point clouds, dependency-free.

The paper's receiver renders with Open3D/Unity; this module provides
the inspection equivalents that work anywhere: NetPBM image writers
(PPM for color, PGM via a turbo-like colormap for depth) and an ASCII
PLY writer for point clouds, so every stage of the pipeline can be
dumped to files and eyeballed in any viewer.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.geometry.pointcloud import PointCloud

__all__ = ["write_ppm", "write_pgm", "depth_to_color", "write_ply"]


def write_ppm(path: str | Path, image: np.ndarray) -> Path:
    """Write an ``(H, W, 3)`` uint8 image as binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise ValueError("write_ppm expects an (H, W, 3) uint8 image")
    path = Path(path)
    height, width = image.shape[:2]
    with path.open("wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode())
        handle.write(image.tobytes())
    return path


def write_pgm(path: str | Path, image: np.ndarray, max_value: int | None = None) -> Path:
    """Write an ``(H, W)`` uint8/uint16 image as binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2 or image.dtype not in (np.uint8, np.uint16):
        raise ValueError("write_pgm expects an (H, W) uint8/uint16 image")
    if max_value is None:
        max_value = 255 if image.dtype == np.uint8 else 65535
    if not 0 < max_value < 65536:
        raise ValueError("max_value must be in (0, 65536)")
    path = Path(path)
    height, width = image.shape
    payload = image.astype(">u2").tobytes() if max_value > 255 else image.astype(np.uint8).tobytes()
    with path.open("wb") as handle:
        handle.write(f"P5\n{width} {height}\n{max_value}\n".encode())
        handle.write(payload)
    return path


def depth_to_color(depth_mm: np.ndarray, max_depth_mm: int = 6000) -> np.ndarray:
    """Map a depth image to an RGB visualization.

    Near is warm, far is cool, invalid (zero) is black -- the standard
    presentation of Kinect depth maps.
    """
    depth_mm = np.asarray(depth_mm, dtype=np.float64)
    if max_depth_mm <= 0:
        raise ValueError("max_depth_mm must be positive")
    normalized = np.clip(depth_mm / max_depth_mm, 0.0, 1.0)
    # Simple three-anchor gradient: red -> green -> blue.
    r = np.clip(1.5 - 3.0 * normalized, 0.0, 1.0)
    g = np.clip(1.5 - 3.0 * np.abs(normalized - 0.5), 0.0, 1.0)
    b = np.clip(3.0 * normalized - 1.5, 0.0, 1.0)
    image = np.stack([r, g, b], axis=-1)
    image[depth_mm <= 0] = 0.0
    return np.clip(np.rint(image * 255.0), 0, 255).astype(np.uint8)


def write_ply(path: str | Path, cloud: PointCloud) -> Path:
    """Write a point cloud as ASCII PLY (positions + RGB)."""
    path = Path(path)
    header = (
        "ply\n"
        "format ascii 1.0\n"
        f"element vertex {cloud.num_points}\n"
        "property float x\n"
        "property float y\n"
        "property float z\n"
        "property uchar red\n"
        "property uchar green\n"
        "property uchar blue\n"
        "end_header\n"
    )
    rows = np.concatenate(
        [cloud.positions.astype(np.float32), cloud.colors.astype(np.float32)], axis=1
    )
    with path.open("w") as handle:
        handle.write(header)
        for x, y, z, r, g, b in rows:
            handle.write(f"{x:.5f} {y:.5f} {z:.5f} {int(r)} {int(g)} {int(b)}\n")
    return path
