"""Motion estimation and compensation (block translation search).

P-frames predict each block from the previous *reconstructed* frame.
The search evaluates a small window of integer-pixel translations per
block (zero motion is always a candidate) and keeps the offset with the
lowest residual energy.  Conferencing scenes move modestly frame to
frame, so a small window captures most of the gain; the window size is
the codec's speed/quality knob.
"""

from __future__ import annotations

import numpy as np

from repro.codec.blocks import block_grid_shape, split_blocks, split_blocks_nd

__all__ = [
    "search_offsets",
    "shifted_planes",
    "estimate_motion",
    "gather_prediction",
    "motion_batch",
]


def search_offsets(search_range: int) -> list[tuple[int, int]]:
    """All (dy, dx) integer offsets within the search window.

    Zero motion is placed first so index 0 is always "no motion".
    """
    if search_range < 0:
        raise ValueError("search_range must be non-negative")
    offsets = [(0, 0)]
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            if (dy, dx) != (0, 0):
                offsets.append((dy, dx))
    return offsets


def shifted_planes(
    reference: np.ndarray,
    offsets: list[tuple[int, int]],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Stack of the reference plane shifted by each offset (edge clamped).

    Output shape ``(num_offsets, H, W)``; entry k is the predictor image
    for motion vector ``offsets[k]``.  ``out`` supplies a preallocated
    stack of that shape (e.g. from a
    :class:`~repro.perf.scratch.ScratchArena`); every entry is fully
    overwritten, so a reused buffer cannot leak state between calls.
    """
    height, width = reference.shape
    radius = max((max(abs(dy), abs(dx)) for dy, dx in offsets), default=0)
    padded = np.pad(reference, radius, mode="edge") if radius else reference
    if out is None:
        stack = np.empty((len(offsets), height, width), dtype=np.float64)
    else:
        if out.shape != (len(offsets), height, width):
            raise ValueError(
                f"out buffer shape {out.shape} != {(len(offsets), height, width)}"
            )
        stack = out
    for index, (dy, dx) in enumerate(offsets):
        stack[index] = padded[radius + dy : radius + dy + height,
                              radius + dx : radius + dx + width]
    return stack


def estimate_motion(
    plane: np.ndarray,
    shifted: np.ndarray,
    block_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pick the best offset per block.

    Args:
        plane: current frame plane (H, W) float.
        shifted: output of :func:`shifted_planes` for the reference.
        block_size: macroblock edge length.

    Returns:
        ``(mv_index, cost)`` -- per-block index into the offset list and
        the winning block SAD.
    """
    current_blocks = split_blocks(plane, block_size)
    num_offsets = shifted.shape[0]
    num_blocks = current_blocks.shape[0]
    costs = np.empty((num_offsets, num_blocks))
    for index in range(num_offsets):
        reference_blocks = split_blocks(shifted[index], block_size)
        costs[index] = np.abs(current_blocks - reference_blocks).sum(axis=(1, 2))
    mv_index = costs.argmin(axis=0)
    return mv_index.astype(np.uint8), costs[mv_index, np.arange(num_blocks)]


def motion_batch(
    planes: np.ndarray,
    references: np.ndarray,
    offsets: list[tuple[int, int]],
    block_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Motion search + compensation for a stack of equal-shape planes.

    The structure-of-arrays twin of ``shifted_planes`` +
    :func:`estimate_motion` + :func:`gather_prediction`: one padded
    slice per offset covers every plane in the stack, and one SAD
    reduction scores all (plane, offset, block) triples.  Results are
    byte-identical per plane to the scalar chain -- the per-block SAD
    values are the same elementwise sums, and ``argmin`` breaks ties by
    lowest offset index on both paths.

    Args:
        planes: ``(S, H, W)`` current planes.
        references: ``(S, H, W)`` reference reconstructions.
        offsets: the shared motion-search window (``search_offsets``).
        block_size: macroblock edge length.

    Returns:
        ``(mv_index, predictor)`` -- ``(S, N)`` uint8 offset indices and
        ``(S, N, B, B)`` predictor blocks.
    """
    if planes.shape != references.shape or planes.ndim != 3:
        raise ValueError(
            f"expected matching (S, H, W) stacks, got {planes.shape} vs "
            f"{references.shape}"
        )
    num_sessions, height, width = planes.shape
    radius = max((max(abs(dy), abs(dx)) for dy, dx in offsets), default=0)
    padded = (
        np.pad(references, ((0, 0), (radius, radius), (radius, radius)), mode="edge")
        if radius
        else references
    )
    # Clip-indexed gathers read each offset's blocks straight out of the
    # radius-padded reference, already in block order.  Clipping the
    # row/column index to the plane's last valid pixel replicates the
    # *shifted* plane's edge -- exactly what per-plane
    # ``np.pad(..., mode="edge")`` after slicing would produce -- and
    # gathering in block order skips the strided plane-to-block reshape
    # copy, which dominates at fleet scale.
    rows, cols = block_grid_shape(height, width, block_size)
    base_rows = np.minimum(np.arange(rows * block_size), height - 1)
    base_cols = np.minimum(np.arange(cols * block_size), width - 1)
    # (N, B) index templates in split_blocks' row-major block order.
    block_rows = np.repeat(base_rows.reshape(rows, block_size), cols, axis=0)
    block_cols = np.tile(base_cols.reshape(cols, block_size), (rows, 1))
    current_blocks = split_blocks_nd(planes, block_size)       # (S, N, B, B)
    num_blocks = current_blocks.shape[1]
    if len(offsets) > 1:
        # One offset at a time: the (S, N, B, B) scratch stays cache
        # resident where a full (S, K, N, B, B) broadcast would thrash
        # at fleet scale.  Per-block sums are the same elementwise
        # |a - b| reduced over the same contiguous (B, B) axes, so
        # costs -- and the argmin tie-break -- are bit-identical.
        costs = np.empty((num_sessions, len(offsets), num_blocks))
        scratch = np.empty_like(current_blocks)
        for index, (dy, dx) in enumerate(offsets):
            shifted = padded[
                :,
                (radius + dy + block_rows)[:, :, None],
                (radius + dx + block_cols)[:, None, :],
            ]
            np.subtract(current_blocks, shifted, out=scratch)
            np.abs(scratch, out=scratch)
            costs[:, index] = scratch.sum(axis=(2, 3))
        mv_index = costs.argmin(axis=1)                        # (S, N)
    else:
        mv_index = np.zeros((num_sessions, num_blocks), dtype=np.int64)
    # One final gather re-reads only the winning blocks instead of
    # holding every offset's block set live for a take_along_axis.
    offset_array = np.asarray(offsets)
    winner_rows = radius + offset_array[mv_index, 0][:, :, None] + block_rows[None]
    winner_cols = radius + offset_array[mv_index, 1][:, :, None] + block_cols[None]
    predictor = padded[
        np.arange(num_sessions)[:, None, None, None],
        winner_rows[:, :, :, None],
        winner_cols[:, :, None, :],
    ]
    return mv_index.astype(np.uint8), predictor


def gather_prediction(
    shifted: np.ndarray, mv_index: np.ndarray, block_size: int
) -> np.ndarray:
    """Assemble the per-block predictor stack selected by ``mv_index``.

    Returns ``(N, B, B)`` predictor blocks.  The decoder calls this with
    the same reference reconstruction, so prediction drift is zero.
    """
    num_offsets = shifted.shape[0]
    all_blocks = np.stack(
        [split_blocks(shifted[index], block_size) for index in range(num_offsets)]
    )
    return all_blocks[mv_index, np.arange(all_blocks.shape[1])]
