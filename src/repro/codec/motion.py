"""Motion estimation and compensation (block translation search).

P-frames predict each block from the previous *reconstructed* frame.
The search evaluates a small window of integer-pixel translations per
block (zero motion is always a candidate) and keeps the offset with the
lowest residual energy.  Conferencing scenes move modestly frame to
frame, so a small window captures most of the gain; the window size is
the codec's speed/quality knob.
"""

from __future__ import annotations

import numpy as np

from repro.codec.blocks import split_blocks

__all__ = ["search_offsets", "shifted_planes", "estimate_motion", "gather_prediction"]


def search_offsets(search_range: int) -> list[tuple[int, int]]:
    """All (dy, dx) integer offsets within the search window.

    Zero motion is placed first so index 0 is always "no motion".
    """
    if search_range < 0:
        raise ValueError("search_range must be non-negative")
    offsets = [(0, 0)]
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            if (dy, dx) != (0, 0):
                offsets.append((dy, dx))
    return offsets


def shifted_planes(
    reference: np.ndarray,
    offsets: list[tuple[int, int]],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Stack of the reference plane shifted by each offset (edge clamped).

    Output shape ``(num_offsets, H, W)``; entry k is the predictor image
    for motion vector ``offsets[k]``.  ``out`` supplies a preallocated
    stack of that shape (e.g. from a
    :class:`~repro.perf.scratch.ScratchArena`); every entry is fully
    overwritten, so a reused buffer cannot leak state between calls.
    """
    height, width = reference.shape
    radius = max((max(abs(dy), abs(dx)) for dy, dx in offsets), default=0)
    padded = np.pad(reference, radius, mode="edge") if radius else reference
    if out is None:
        stack = np.empty((len(offsets), height, width), dtype=np.float64)
    else:
        if out.shape != (len(offsets), height, width):
            raise ValueError(
                f"out buffer shape {out.shape} != {(len(offsets), height, width)}"
            )
        stack = out
    for index, (dy, dx) in enumerate(offsets):
        stack[index] = padded[radius + dy : radius + dy + height,
                              radius + dx : radius + dx + width]
    return stack


def estimate_motion(
    plane: np.ndarray,
    shifted: np.ndarray,
    block_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pick the best offset per block.

    Args:
        plane: current frame plane (H, W) float.
        shifted: output of :func:`shifted_planes` for the reference.
        block_size: macroblock edge length.

    Returns:
        ``(mv_index, cost)`` -- per-block index into the offset list and
        the winning block SAD.
    """
    current_blocks = split_blocks(plane, block_size)
    num_offsets = shifted.shape[0]
    num_blocks = current_blocks.shape[0]
    costs = np.empty((num_offsets, num_blocks))
    for index in range(num_offsets):
        reference_blocks = split_blocks(shifted[index], block_size)
        costs[index] = np.abs(current_blocks - reference_blocks).sum(axis=(1, 2))
    mv_index = costs.argmin(axis=0)
    return mv_index.astype(np.uint8), costs[mv_index, np.arange(num_blocks)]


def gather_prediction(
    shifted: np.ndarray, mv_index: np.ndarray, block_size: int
) -> np.ndarray:
    """Assemble the per-block predictor stack selected by ``mv_index``.

    Returns ``(N, B, B)`` predictor blocks.  The decoder calls this with
    the same reference reconstruction, so prediction drift is zero.
    """
    num_offsets = shifted.shape[0]
    all_blocks = np.stack(
        [split_blocks(shifted[index], block_size) for index in range(num_offsets)]
    )
    return all_blocks[mv_index, np.arange(all_blocks.shape[1])]
