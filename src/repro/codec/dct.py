"""Blockwise 2D DCT transform.

Type-II DCT with orthonormal scaling over the last two axes of a block
stack -- the transform stage shared by JPEG/H.26x-family codecs.  Using
``scipy.fft.dctn`` over the stacked block axis keeps the whole frame's
transform a single vectorized call.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

__all__ = ["forward_dct", "inverse_dct"]


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """Orthonormal 2D DCT-II of each block in an ``(N, B, B)`` stack."""
    if blocks.ndim != 3:
        raise ValueError(f"expected (N, B, B) block stack, got {blocks.shape}")
    return dctn(blocks.astype(np.float64), axes=(1, 2), norm="ortho")


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct`."""
    if coefficients.ndim != 3:
        raise ValueError(f"expected (N, B, B) coefficient stack, got {coefficients.shape}")
    return idctn(np.asarray(coefficients, dtype=np.float64), axes=(1, 2), norm="ortho")
