"""Quantization: the lossy, rate-controlling stage.

Follows H.26x conventions: an integer quality parameter QP in [0, 51]
maps exponentially to a quantization step (doubling every 6 QP), and a
dead-zone uniform quantizer divides DCT coefficients by that step.  An
optional frequency-weighting matrix quantizes high frequencies more
coarsely, as perceptual codecs do for *color*; depth planes use a flat
matrix because depth discontinuities live in high frequencies and
humans are highly sensitive to depth error (paper sections 3.2-3.3).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "QP_MIN",
    "QP_MAX",
    "qp_to_step",
    "weight_matrix",
    "quantize",
    "dequantize",
]

QP_MIN = 0
QP_MAX = 51
# High-bit-depth extension: H.265 widens the usable QP range for
# greater-than-8-bit content (internally via QpBdOffset).  Our 16-bit Y
# mode mirrors that: 8 extra bits of dynamic range buy 48 extra QP
# (6 QP per doubling), letting rate control reach small frame sizes on
# 16-bit planes.  Step size remains a function of QP alone -- which is
# exactly why LiVo's depth *scaling* helps (section 3.2).
QP_MAX_EXTENDED = QP_MAX + 48

# Dead-zone rounding offset: < 0.5 biases small coefficients toward zero,
# which is where most of the rate saving comes from.
DEAD_ZONE_OFFSET = 1.0 / 3.0


def qp_to_step(qp: float) -> float:
    """H.26x-style step size: doubles every 6 QP, step(4) = 1.

    QP above :data:`QP_MAX` is legal only for 16-bit planes (the
    high-bit-depth extension); callers enforce their own plane limits.
    """
    if not QP_MIN <= qp <= QP_MAX_EXTENDED:
        raise ValueError(f"QP must be within [{QP_MIN}, {QP_MAX_EXTENDED}], got {qp}")
    return float(2.0 ** ((qp - 4.0) / 6.0))


def weight_matrix(block_size: int, strength: float = 1.0) -> np.ndarray:
    """Frequency weights: 1.0 at DC, growing linearly with frequency index.

    ``strength = 0`` yields a flat matrix (all ones).
    """
    if strength < 0:
        raise ValueError("strength must be non-negative")
    u = np.arange(block_size)
    radial = (u[:, None] + u[None, :]) / (2.0 * (block_size - 1))
    return 1.0 + strength * 2.0 * radial


def quantize(
    coefficients: np.ndarray,
    qp: float,
    weights: np.ndarray | None = None,
    scale=None,
) -> np.ndarray:
    """Dead-zone quantize a coefficient stack to int32 levels.

    ``scale`` lets a caller supply the precomputed divisor -- ``step``
    when ``weights`` is None, ``step * weights`` otherwise (see
    :meth:`repro.perf.scratch.ScratchArena.quant_scale`).  It must equal
    what this function would compute; it exists purely to skip the
    recomputation, so results are bit-identical either way.
    """
    if scale is None:
        step = qp_to_step(qp)
        scale = step if weights is None else step * weights
    scaled = coefficients / scale
    levels = np.sign(scaled) * np.floor(np.abs(scaled) + DEAD_ZONE_OFFSET)
    return levels.astype(np.int32)


def dequantize(
    levels: np.ndarray,
    qp: float,
    weights: np.ndarray | None = None,
    scale=None,
) -> np.ndarray:
    """Reconstruct coefficients from quantization levels.

    ``scale`` mirrors :func:`quantize`: the precomputed multiplier,
    identical in value to the internally derived one.
    """
    if scale is None:
        step = qp_to_step(qp)
        scale = step if weights is None else step * weights
    return levels.astype(np.float64) * scale
