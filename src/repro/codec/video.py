"""The video encoder and decoder.

Pipeline per plane (H.26x structure, simplified):

1. predict -- I-frames code pixels directly; P-frames code the residual
   against a motion-compensated reference (the previous *reconstructed*
   frame, so encoder and decoder never drift);
2. transform -- blockwise 8x8 orthonormal DCT;
3. quantize -- dead-zone uniform quantizer driven by QP, optionally
   frequency weighted;
4. entropy-code -- zigzag + coefficient-major DEFLATE.

The encoder exposes two entry points: :meth:`VideoEncoder.encode` (fixed
QP, used by the LiVo-NoAdapt baseline) and
:meth:`VideoEncoder.encode_to_target` (target byte budget in, QP chosen
by the rate controller -- the *direct rate adaptation* the paper's whole
design leans on).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.codec.blocks import merge_blocks, split_blocks
from repro.codec.dct import inverse_dct
from repro.codec.entropy import decode_levels
from repro.codec.frame import EncodedFrame, FrameType, PixelFormat
from repro.codec.motion import (
    gather_prediction,
    search_offsets,
    shifted_planes,
)
from repro.codec.quant import (
    QP_MAX,
    QP_MAX_EXTENDED,
    QP_MIN,
    dequantize,
    weight_matrix,
)
from repro.codec.rate_control import RateController
from repro.codec.yuv import rgb_to_ycbcr, ycbcr_to_rgb
from repro.perf.scratch import ScratchArena
from repro.runtime.batchplane import (
    drive_serial,
    entropy_encode_request,
    motion_request,
    plane_transform_request,
)

__all__ = ["VideoCodecConfig", "VideoEncoder", "VideoDecoder"]

_PLANE_HEADER = struct.Struct("<BII")


@dataclass(frozen=True)
class VideoCodecConfig:
    """Shared encoder/decoder parameters.

    Attributes:
        block_size: macroblock edge length.
        gop_size: I-frame period (an INTRA frame every ``gop_size`` frames).
        search_range: motion search window radius in pixels (0 = zero-motion).
        effort: entropy-coder effort, 1 (fast) to 9 (thorough).
        weight_strength: frequency-weighting strength for the luma plane;
            0 gives flat quantization (used for depth, where high-frequency
            discontinuities carry geometry).
        chroma_weight_strength: frequency weighting for chroma planes.
        chroma_qp_offset: extra QP applied to chroma planes -- codecs
            "compress the Y-channel at higher bitrates ... because humans
            are sensitive to luminance distortions" (paper section 3.2).
        qp_max: largest legal QP for this stream.  8-bit color stays at
            the standard 51; the 16-bit Y depth mode uses the
            high-bit-depth extension so rate control has headroom.
        chroma_subsampling: encode chroma planes at half resolution
            (4:2:0, the mode production H.265 deployments use).  Off by
            default so rate/quality calibrations are subsampling-free;
            see benchmarks/bench_ablation_chroma.py for the trade-off.
        scratch_reuse: memoize quantization tables / motion offsets and
            reuse motion-search buffers via a per-stream
            :class:`~repro.perf.scratch.ScratchArena`.  Bitstreams are
            byte-identical either way; the flag exists as an escape
            hatch (``SessionConfig.kernel_cache``, ``--no-kernel-cache``).
    """

    block_size: int = 8
    gop_size: int = 30
    search_range: int = 1
    effort: int = 6
    weight_strength: float = 0.6
    chroma_weight_strength: float = 1.2
    chroma_qp_offset: int = 6
    qp_max: int = QP_MAX
    chroma_subsampling: bool = False
    scratch_reuse: bool = True

    def __post_init__(self) -> None:
        if self.block_size < 2:
            raise ValueError("block_size must be at least 2")
        if self.gop_size < 1:
            raise ValueError("gop_size must be at least 1")
        if self.search_range < 0:
            raise ValueError("search_range must be non-negative")

    @staticmethod
    def for_depth(**overrides) -> "VideoCodecConfig":
        """Preset for the 16-bit depth stream: flat quantization.

        Depth discontinuities are high-frequency content that perceptual
        weighting would crush, producing exactly the artifacts the paper
        works to avoid (sections 3.2, 4.5).
        """
        params = dict(
            weight_strength=0.0,
            chroma_weight_strength=0.0,
            chroma_qp_offset=0,
            qp_max=QP_MAX_EXTENDED,
        )
        params.update(overrides)
        return VideoCodecConfig(**params)


@dataclass
class _PlaneCode:
    """Per-plane coded payload plus its reconstruction."""

    mv_bytes: bytes
    level_bytes: bytes
    reconstruction: np.ndarray


class _CodecCore:
    """Plane-level encode/decode shared by encoder and decoder.

    With ``config.scratch_reuse`` a per-core :class:`ScratchArena`
    memoizes the weight matrices, quantization scales, and motion
    offset table, and hosts the reusable motion-search stack.  The
    arena is private to this core -- fork-process encoder workers each
    build their own (DESIGN.md section 9).
    """

    def __init__(self, config: VideoCodecConfig) -> None:
        self.config = config
        self.arena = ScratchArena() if config.scratch_reuse else None
        if self.arena is not None:
            self._offsets = self.arena.search_offsets(config.search_range)
        else:
            self._offsets = search_offsets(config.search_range)

    def plane_weights(self, plane_index: int, pixel_format: PixelFormat) -> np.ndarray | None:
        strength = (
            self.config.weight_strength
            if plane_index == 0
            else self.config.chroma_weight_strength
        )
        if pixel_format is PixelFormat.GRAY16:
            strength = self.config.weight_strength
        if strength == 0.0:
            return None
        if self.arena is not None:
            return self.arena.weight_matrix(self.config.block_size, strength)
        return weight_matrix(self.config.block_size, strength)

    def plane_qp(self, base_qp: int, plane_index: int, pixel_format: PixelFormat) -> int:
        if pixel_format is PixelFormat.RGB8 and plane_index > 0:
            return min(self.config.qp_max, base_qp + self.config.chroma_qp_offset)
        return base_qp

    def encode_plane(
        self,
        plane: np.ndarray,
        reference: np.ndarray | None,
        qp: int,
        weights: np.ndarray | None,
        value_range: tuple[float, float],
    ) -> _PlaneCode:
        return drive_serial(
            self.encode_plane_steps(plane, reference, qp, weights, value_range)
        )

    def encode_plane_steps(
        self,
        plane: np.ndarray,
        reference: np.ndarray | None,
        qp: int,
        weights: np.ndarray | None,
        value_range: tuple[float, float],
    ):
        """Plane encode as a request-yielding generator.

        The kernel-heavy steps -- motion search and the DCT/quant round
        trip -- are yielded as :class:`BatchRequest` jobs so a driver
        can resolve them per session (:func:`drive_serial`, which
        :meth:`encode_plane` wraps) or stacked across sessions
        (:class:`repro.runtime.batchplane.BatchPlane`).  Stream state
        never leaves the generator, so both drivers produce the same
        bytes by construction.
        """
        block_size = self.config.block_size
        height, width = plane.shape
        current_blocks = split_blocks(plane, block_size)

        if reference is None:
            predictor = np.zeros_like(current_blocks)
            mv_bytes = b""
        else:
            (mv_index, predictor) = (
                yield [
                    motion_request(
                        plane, reference, self.config.search_range, block_size, ctx=self
                    )
                ]
            )[0]
            mv_bytes = zlib.compress(mv_index.tobytes(), level=self.config.effort)

        residual = current_blocks - predictor
        (levels, recon_delta) = (
            yield [plane_transform_request(residual, qp, weights, block_size, ctx=self)]
        )[0]
        level_bytes = (
            yield [entropy_encode_request(levels, self.config.effort, ctx=self)]
        )[0]

        recon_blocks = predictor + recon_delta
        reconstruction = np.clip(
            merge_blocks(recon_blocks, height, width, block_size), *value_range
        )
        return _PlaneCode(mv_bytes, level_bytes, reconstruction)

    def decode_plane(
        self,
        mv_bytes: bytes,
        level_bytes: bytes,
        reference: np.ndarray | None,
        qp: int,
        weights: np.ndarray | None,
        height: int,
        width: int,
        value_range: tuple[float, float],
    ) -> np.ndarray:
        block_size = self.config.block_size
        levels = decode_levels(level_bytes)

        if reference is None:
            predictor = np.zeros_like(levels, dtype=np.float64)
        else:
            shifted = self._shifted(reference)
            if mv_bytes:
                mv_index = np.frombuffer(zlib.decompress(mv_bytes), dtype=np.uint8)
            else:
                mv_index = np.zeros(levels.shape[0], dtype=np.uint8)
            predictor = gather_prediction(shifted, mv_index, block_size)

        recon_blocks = predictor + inverse_dct(
            dequantize(levels, qp, weights, scale=self._scale(qp, weights))
        )
        return np.clip(merge_blocks(recon_blocks, height, width, block_size), *value_range)

    def _shifted(self, reference: np.ndarray) -> np.ndarray:
        """Motion-search stack, into the arena's reusable buffer if any."""
        out = (
            self.arena.shift_buffer(len(self._offsets), reference.shape)
            if self.arena is not None
            else None
        )
        return shifted_planes(reference, self._offsets, out=out)

    def _scale(self, qp: int, weights: np.ndarray | None):
        """Memoized quantization divisor, or None for the direct path."""
        if self.arena is None:
            return None
        return self.arena.quant_scale(qp, weights)


def _downsample_half(plane: np.ndarray) -> np.ndarray:
    """2x2 average pooling (edge-padded to even dimensions)."""
    height, width = plane.shape
    padded = np.pad(plane, ((0, height % 2), (0, width % 2)), mode="edge")
    return padded.reshape(
        padded.shape[0] // 2, 2, padded.shape[1] // 2, 2
    ).mean(axis=(1, 3))


def _upsample_double(plane: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbor 2x upsampling, cropped to (height, width)."""
    doubled = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
    return doubled[:height, :width]


def _image_planes(
    image: np.ndarray, chroma_subsampling: bool = False
) -> tuple[list[np.ndarray], PixelFormat, tuple[float, float]]:
    """Split an input image into codec planes and identify its format."""
    image = np.asarray(image)
    if image.dtype == np.uint8 and image.ndim == 3 and image.shape[2] == 3:
        ycbcr = rgb_to_ycbcr(image)
        planes = [ycbcr[..., channel] for channel in range(3)]
        if chroma_subsampling:
            planes = [planes[0]] + [_downsample_half(p) for p in planes[1:]]
        return planes, PixelFormat.RGB8, (0.0, 255.0)
    if image.dtype == np.uint16 and image.ndim == 2:
        return [image.astype(np.float64)], PixelFormat.GRAY16, (0.0, 65535.0)
    raise ValueError(
        "unsupported image: expected (H, W, 3) uint8 or (H, W) uint16, "
        f"got shape {image.shape} dtype {image.dtype}"
    )


def _planes_to_image(
    planes: list[np.ndarray], pixel_format: PixelFormat, chroma_subsampling: bool = False
) -> np.ndarray:
    if pixel_format is PixelFormat.RGB8:
        if chroma_subsampling:
            height, width = planes[0].shape
            planes = [planes[0]] + [
                _upsample_double(p, height, width) for p in planes[1:]
            ]
        return ycbcr_to_rgb(np.stack(planes, axis=-1))
    return np.clip(np.rint(planes[0]), 0, 65535).astype(np.uint16)


def _plane_dims(
    plane_index: int, height: int, width: int,
    pixel_format: PixelFormat, chroma_subsampling: bool,
) -> tuple[int, int]:
    """Stored dimensions of one plane (chroma may be half resolution)."""
    if (
        pixel_format is PixelFormat.RGB8
        and chroma_subsampling
        and plane_index > 0
    ):
        return -(-height // 2), -(-width // 2)
    return height, width


def _pack_planes(codes: list[_PlaneCode]) -> bytes:
    parts = [struct.pack("<B", len(codes))]
    for code in codes:
        parts.append(_PLANE_HEADER.pack(1 if code.mv_bytes else 0,
                                        len(code.mv_bytes), len(code.level_bytes)))
        parts.append(code.mv_bytes)
        parts.append(code.level_bytes)
    return b"".join(parts)


def _unpack_planes(payload: bytes) -> list[tuple[bytes, bytes]]:
    if not payload:
        raise ValueError("empty frame payload")
    count = payload[0]
    cursor = 1
    segments = []
    for _ in range(count):
        _, mv_len, level_len = _PLANE_HEADER.unpack_from(payload, cursor)
        cursor += _PLANE_HEADER.size
        mv_bytes = payload[cursor : cursor + mv_len]
        cursor += mv_len
        level_bytes = payload[cursor : cursor + level_len]
        cursor += level_len
        segments.append((mv_bytes, level_bytes))
    return segments


class VideoEncoder:
    """Stateful single-stream encoder."""

    def __init__(
        self,
        config: VideoCodecConfig | None = None,
        rate_controller: RateController | None = None,
    ) -> None:
        self.config = config or VideoCodecConfig()
        self.rate_controller = rate_controller or RateController(qp_max=self.config.qp_max)
        self._core = _CodecCore(self.config)
        self._reference: list[np.ndarray] | None = None
        self._frame_index = 0
        self.last_reconstruction: np.ndarray | None = None

    def reset(self) -> None:
        """Drop reference state; the next frame becomes an I-frame."""
        self._reference = None
        self._frame_index = 0

    @property
    def cache_counters(self):
        """Scratch-arena hit/miss counters, or None when reuse is off."""
        return None if self._core.arena is None else self._core.arena.counters

    def _next_frame_type(self, force_intra: bool) -> FrameType:
        if force_intra or self._reference is None:
            return FrameType.INTRA
        if self._frame_index % self.config.gop_size == 0:
            return FrameType.INTRA
        return FrameType.INTER

    def encode(
        self, image: np.ndarray, qp: int, force_intra: bool = False
    ) -> tuple[EncodedFrame, np.ndarray]:
        """Encode one frame at a fixed QP.

        Returns the encoded frame and its decoded-side reconstruction --
        bit-identical to what :class:`VideoDecoder` will produce, which is
        what LiVo's sender uses to estimate encoding quality without a
        round trip (section 3.3).
        """
        return drive_serial(self.encode_steps(image, qp, force_intra=force_intra))

    def encode_steps(self, image: np.ndarray, qp: int, force_intra: bool = False):
        """:meth:`encode` as a request-yielding generator (batch plane)."""
        if not QP_MIN <= qp <= self.config.qp_max:
            raise ValueError(
                f"QP must be within [{QP_MIN}, {self.config.qp_max}], got {qp}"
            )
        planes, pixel_format, value_range = _image_planes(
            image, self.config.chroma_subsampling
        )
        height, width = planes[0].shape
        frame_type = self._next_frame_type(force_intra)

        codes = []
        for index, plane in enumerate(planes):
            reference = (
                self._reference[index]
                if frame_type is FrameType.INTER and self._reference is not None
                else None
            )
            codes.append(
                (
                    yield from self._core.encode_plane_steps(
                        plane,
                        reference,
                        self._core.plane_qp(qp, index, pixel_format),
                        self._core.plane_weights(index, pixel_format),
                        value_range,
                    )
                )
            )

        self._reference = [code.reconstruction for code in codes]
        self.last_reconstruction = _planes_to_image(
            self._reference, pixel_format, self.config.chroma_subsampling
        )

        frame = EncodedFrame(
            frame_type=frame_type,
            pixel_format=pixel_format,
            qp=qp,
            sequence=self._frame_index,
            height=height,
            width=width,
            payload=_pack_planes(codes),
        )
        self._frame_index += 1
        return frame, self.last_reconstruction

    def encode_to_target(
        self, image: np.ndarray, target_bytes: int, force_intra: bool = False
    ) -> tuple[EncodedFrame, np.ndarray]:
        """Encode one frame aiming at a byte budget (direct rate adaptation).

        The rate controller proposes a QP from its rate model; after
        encoding, the observed (QP, size) pair updates the model.  One
        re-encode is attempted when the first try misses the budget badly,
        mirroring how production rate control recovers from scene changes.
        """
        return drive_serial(
            self.encode_to_target_steps(image, target_bytes, force_intra=force_intra)
        )

    def encode_to_target_steps(
        self, image: np.ndarray, target_bytes: int, force_intra: bool = False
    ):
        """:meth:`encode_to_target` as a request-yielding generator."""
        if target_bytes <= 0:
            raise ValueError("target_bytes must be positive")
        qp = self.rate_controller.propose_qp(target_bytes)
        # Snapshot stream state: a retry must replace the first attempt,
        # re-predicting from the *previous* frame's reconstruction --
        # otherwise encoder and decoder reference chains diverge.
        saved_reference = None if self._reference is None else [p.copy() for p in self._reference]
        saved_index = self._frame_index
        frame, reconstruction = yield from self.encode_steps(
            image, qp, force_intra=force_intra
        )
        retry_qp = self.rate_controller.retry_qp(qp, frame.size_bytes, target_bytes)
        if retry_qp is not None:
            self._reference = saved_reference
            self._frame_index = saved_index
            frame, reconstruction = yield from self.encode_steps(
                image, retry_qp, force_intra=force_intra
            )
            qp = retry_qp
        self.rate_controller.update(qp, frame.size_bytes, target_bytes)
        return frame, reconstruction


class VideoDecoder:
    """Stateful single-stream decoder; must mirror the encoder's config."""

    def __init__(self, config: VideoCodecConfig | None = None) -> None:
        self.config = config or VideoCodecConfig()
        self._core = _CodecCore(self.config)
        self._reference: list[np.ndarray] | None = None

    def reset(self) -> None:
        """Drop reference state (e.g. after a PLI-triggered keyframe)."""
        self._reference = None

    @property
    def cache_counters(self):
        """Scratch-arena hit/miss counters, or None when reuse is off."""
        return None if self._core.arena is None else self._core.arena.counters

    def decode(self, frame: EncodedFrame) -> np.ndarray:
        """Decode one frame to an image array."""
        if frame.frame_type is FrameType.INTER and self._reference is None:
            raise ValueError("cannot decode an INTER frame without a reference")
        value_range = (0.0, 255.0) if frame.pixel_format is PixelFormat.RGB8 else (0.0, 65535.0)
        segments = _unpack_planes(frame.payload)

        planes = []
        for index, (mv_bytes, level_bytes) in enumerate(segments):
            reference = (
                self._reference[index] if frame.frame_type is FrameType.INTER else None
            )
            plane_height, plane_width = _plane_dims(
                index, frame.height, frame.width, frame.pixel_format,
                self.config.chroma_subsampling,
            )
            planes.append(
                self._core.decode_plane(
                    mv_bytes,
                    level_bytes,
                    reference,
                    self._core.plane_qp(frame.qp, index, frame.pixel_format),
                    self._core.plane_weights(index, frame.pixel_format),
                    plane_height,
                    plane_width,
                    value_range,
                )
            )
        self._reference = planes
        return _planes_to_image(planes, frame.pixel_format, self.config.chroma_subsampling)
