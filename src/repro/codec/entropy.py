"""Entropy coding of quantized coefficient stacks.

Quantized levels are scanned in zigzag order within each block (low to
high frequency) and laid out coefficient-major across blocks so that
same-frequency coefficients are adjacent.  They are then coded in three
bit-level streams, CAVLC-style:

1. a **significance bitmap** -- one bit per coefficient (zero or not);
   long zero runs cost almost nothing after DEFLATE;
2. a **length-class stream** -- 5 bits per nonzero coefficient giving
   the magnitude's bit length;
3. a **magnitude stream** -- for each nonzero coefficient, its
   magnitude without the implicit leading 1, plus a sign bit.

Every stream passes through DEFLATE.  Working at bit granularity
matters: a byte-oriented stage would charge every nonzero coefficient a
whole byte regardless of its information content, systematically
distorting rate comparisons between 8-bit and 16-bit content (exactly
the comparison LiVo's depth scaling makes).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "zigzag_indices",
    "encode_levels",
    "encode_levels_batch",
    "decode_levels",
]

_ZIGZAG_CACHE: dict[int, np.ndarray] = {}


def zigzag_indices(block_size: int) -> np.ndarray:
    """Flat indices that traverse a ``B x B`` block in zigzag order.

    The returned array is the cached instance itself, marked read-only:
    a caller mutating it would otherwise silently corrupt every later
    encode/decode using the same block size.
    """
    if block_size in _ZIGZAG_CACHE:
        return _ZIGZAG_CACHE[block_size]
    order = sorted(
        range(block_size * block_size),
        key=lambda idx: _zigzag_key(idx // block_size, idx % block_size),
    )
    indices = np.array(order, dtype=np.int64)
    indices.setflags(write=False)
    _ZIGZAG_CACHE[block_size] = indices
    return indices


def _zigzag_key(row: int, col: int) -> tuple[int, int]:
    diagonal = row + col
    # Even diagonals run bottom-left to top-right, odd the other way.
    within = col if diagonal % 2 == 0 else row
    return diagonal, within


# ----------------------------------------------------------------------
# Vectorized variable-length bitfield packing
# ----------------------------------------------------------------------
#
# Codewords are laid out MSB-first at bit offsets given by the running
# sum of the codeword lengths.  The fast path materializes the whole
# ``(N, max_length)`` bit-plane matrix in one shot -- bit b of codeword
# n lives at flat position ``offsets[n] + b`` -- and scatters it with a
# single fancy-indexed assignment; the ``_scalar`` twins keep the
# original one-Python-iteration-per-bit-plane loop as the reference the
# tests pin byte-identity against.


def _pack_bitfields(codes: np.ndarray, lengths: np.ndarray) -> bytes:
    """Concatenate variable-length codewords MSB-first into bytes."""
    if len(codes) == 0:
        return b""
    codes = codes.astype(np.uint64)
    lengths = lengths.astype(np.int64)
    total_bits = int(lengths.sum())
    offsets = np.zeros(len(codes), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    max_length = int(lengths.max())
    positions = np.arange(max_length, dtype=np.int64)
    # Shift amounts per (codeword, bit position); positions past a
    # codeword's length are masked out, so their clamped shift of 0 is
    # never read.
    shifts = lengths[:, None] - 1 - positions[None, :]
    valid = shifts >= 0
    np.maximum(shifts, 0, out=shifts)
    bit_matrix = (
        (codes[:, None] >> shifts.astype(np.uint64)) & np.uint64(1)
    ).astype(np.uint8)
    bits = np.zeros(total_bits, dtype=np.uint8)
    bits[(offsets[:, None] + positions[None, :])[valid]] = bit_matrix[valid]
    return np.packbits(bits).tobytes()


def _pack_bitfields_segmented(
    codes: np.ndarray, lengths: np.ndarray, counts: np.ndarray
) -> list[bytes]:
    """Pack consecutive codeword runs, each into its own byte stream.

    ``counts[s]`` codewords belong to segment ``s``; the return value is
    one byte string per segment, byte-identical to calling
    :func:`_pack_bitfields` on that segment alone.  Packing runs per
    segment on purpose: each segment's bit-plane matrix is a few
    kilobytes and stays cache resident, whereas a single fused scatter
    over a fleet-sized bucket spills every intermediate to memory and
    measures *slower* than this loop.  The batched entropy coder's win
    comes from sharing the surrounding zigzag/significance/magnitude
    math, not from fusing the bit scatter.
    """
    counts = np.asarray(counts, dtype=np.int64)
    bounds = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return [
        _pack_bitfields(
            codes[bounds[index] : bounds[index + 1]],
            lengths[bounds[index] : bounds[index + 1]],
        )
        for index in range(len(counts))
    ]


def _unpack_bitfields(data: bytes, lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_pack_bitfields` given the codeword lengths."""
    lengths = lengths.astype(np.int64)
    if len(lengths) == 0:
        return np.zeros(0, dtype=np.uint64)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    offsets = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    max_length = int(lengths.max())
    positions = np.arange(max_length, dtype=np.int64)
    shifts = lengths[:, None] - 1 - positions[None, :]
    valid = shifts >= 0
    np.maximum(shifts, 0, out=shifts)
    index = np.where(valid, offsets[:, None] + positions[None, :], 0)
    gathered = np.where(valid, bits[index], 0).astype(np.uint64)
    return np.bitwise_or.reduce(gathered << shifts.astype(np.uint64), axis=1)


def _pack_bitfields_scalar(codes: np.ndarray, lengths: np.ndarray) -> bytes:
    """Reference bit-plane loop for :func:`_pack_bitfields` (tests only)."""
    if len(codes) == 0:
        return b""
    codes = codes.astype(np.uint64)
    lengths = lengths.astype(np.int64)
    total_bits = int(lengths.sum())
    offsets = np.zeros(len(codes), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    bits = np.zeros(total_bits, dtype=np.uint8)
    max_length = int(lengths.max())
    for bit in range(max_length):
        mask = lengths > bit
        shift = (lengths[mask] - 1 - bit).astype(np.uint64)
        bits[offsets[mask] + bit] = ((codes[mask] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits).tobytes()


def _unpack_bitfields_scalar(data: bytes, lengths: np.ndarray) -> np.ndarray:
    """Reference bit-plane loop for :func:`_unpack_bitfields` (tests only)."""
    lengths = lengths.astype(np.int64)
    if len(lengths) == 0:
        return np.zeros(0, dtype=np.uint64)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    offsets = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    codes = np.zeros(len(lengths), dtype=np.uint64)
    max_length = int(lengths.max())
    for bit in range(max_length):
        mask = lengths > bit
        shift = (lengths[mask] - 1 - bit).astype(np.uint64)
        codes[mask] |= bits[offsets[mask] + bit].astype(np.uint64) << shift
    return codes


# All 64 powers of two; searchsorted against this table gives the exact
# integer bit length.  The float-log2 route misclassifies magnitudes
# whose log2 lands on a representation boundary (e.g. values just below
# a power of two at >= 2^53, where float64 can no longer represent the
# integer exactly) -- a wrong bit length corrupts the mantissa masking
# and the decoder reconstructs a different magnitude.
_POW2 = np.uint64(1) << np.arange(64, dtype=np.uint64)


def _bit_length(values: np.ndarray) -> np.ndarray:
    """Exact bit length of positive integers, vectorized."""
    return np.searchsorted(_POW2, values.astype(np.uint64), side="right").astype(
        np.int64
    )


# ----------------------------------------------------------------------
# Level stream encode / decode
# ----------------------------------------------------------------------


def encode_levels(levels: np.ndarray, effort: int = 6) -> bytes:
    """Serialize an ``(N, B, B)`` int32 level stack to compressed bytes.

    ``effort`` maps to the DEFLATE level (1 fast .. 9 thorough), modeling
    the speed/ratio knob hardware encoders expose.
    """
    if levels.ndim != 3 or levels.shape[1] != levels.shape[2]:
        raise ValueError(f"expected (N, B, B) levels, got {levels.shape}")
    if not 1 <= effort <= 9:
        raise ValueError("effort must be in [1, 9]")
    num_blocks, block_size, _ = levels.shape
    zigzag = zigzag_indices(block_size)
    flat = levels.reshape(num_blocks, -1)[:, zigzag].T.ravel()

    significant = flat != 0
    significance_blob = zlib.compress(np.packbits(significant).tobytes(), effort)

    nonzero = flat[significant].astype(np.int64)
    magnitudes = np.abs(nonzero)
    signs = (nonzero < 0).astype(np.uint64)
    if len(nonzero):
        bit_lengths = _bit_length(magnitudes)
        class_blob = zlib.compress(
            _pack_bitfields((bit_lengths - 1).astype(np.uint64), np.full(len(nonzero), 5)),
            effort,
        )
        # Magnitude without its implicit leading 1, then the sign bit.
        mantissa_mask = (np.uint64(1) << (bit_lengths - 1).astype(np.uint64)) - np.uint64(1)
        mantissas = magnitudes.astype(np.uint64) & mantissa_mask
        codes = (mantissas << np.uint64(1)) | signs
        magnitude_blob = zlib.compress(_pack_bitfields(codes, bit_lengths), effort)
    else:
        class_blob = zlib.compress(b"", effort)
        magnitude_blob = zlib.compress(b"", effort)

    header = (
        num_blocks.to_bytes(4, "little")
        + block_size.to_bytes(2, "little")
        + len(nonzero).to_bytes(4, "little")
        + len(significance_blob).to_bytes(4, "little")
        + len(class_blob).to_bytes(4, "little")
    )
    return header + significance_blob + class_blob + magnitude_blob


def encode_levels_batch(stacks: np.ndarray, effort: int = 6) -> list[bytes]:
    """Serialize ``(S, N, B, B)`` level stacks to ``S`` compressed payloads.

    The structure-of-arrays twin of :func:`encode_levels`: the zigzag
    reorder, significance bitmap, and magnitude-class math run once over
    the whole stack.  The variable-length bit packing and the DEFLATE
    calls stay per stack (each payload is an independent bit stream, and
    small per-segment packs beat a fused fleet-wide scatter -- see
    :func:`_pack_bitfields_segmented`).  Every returned payload is
    byte-identical to ``encode_levels(stacks[s])``.
    """
    if stacks.ndim != 4 or stacks.shape[2] != stacks.shape[3]:
        raise ValueError(f"expected (S, N, B, B) level stacks, got {stacks.shape}")
    if not 1 <= effort <= 9:
        raise ValueError("effort must be in [1, 9]")
    num_stacks, num_blocks, block_size, _ = stacks.shape
    zigzag = zigzag_indices(block_size)
    flat = (
        stacks.reshape(num_stacks, num_blocks, -1)[:, :, zigzag]
        .transpose(0, 2, 1)
        .reshape(num_stacks, -1)
    )

    significant = flat != 0                                    # (S, M)
    significance_rows = np.packbits(significant, axis=1)       # (S, ceil(M/8))
    counts = significant.sum(axis=1)

    nonzero = flat[significant].astype(np.int64)               # stack-major
    magnitudes = np.abs(nonzero)
    signs = (nonzero < 0).astype(np.uint64)
    bit_lengths = _bit_length(magnitudes)
    class_streams = _pack_bitfields_segmented(
        (bit_lengths - 1).astype(np.uint64),
        np.full(len(nonzero), 5, dtype=np.int64),
        counts,
    )
    mantissa_mask = (np.uint64(1) << (bit_lengths - 1).astype(np.uint64)) - np.uint64(1)
    codes = ((magnitudes.astype(np.uint64) & mantissa_mask) << np.uint64(1)) | signs
    magnitude_streams = _pack_bitfields_segmented(codes, bit_lengths, counts)

    payloads = []
    for index in range(num_stacks):
        significance_blob = zlib.compress(significance_rows[index].tobytes(), effort)
        class_blob = zlib.compress(class_streams[index], effort)
        magnitude_blob = zlib.compress(magnitude_streams[index], effort)
        header = (
            num_blocks.to_bytes(4, "little")
            + block_size.to_bytes(2, "little")
            + int(counts[index]).to_bytes(4, "little")
            + len(significance_blob).to_bytes(4, "little")
            + len(class_blob).to_bytes(4, "little")
        )
        payloads.append(header + significance_blob + class_blob + magnitude_blob)
    return payloads


def decode_levels(data: bytes) -> np.ndarray:
    """Inverse of :func:`encode_levels`."""
    if len(data) < 18:
        raise ValueError("truncated entropy payload")
    num_blocks = int.from_bytes(data[0:4], "little")
    block_size = int.from_bytes(data[4:6], "little")
    num_nonzero = int.from_bytes(data[6:10], "little")
    significance_len = int.from_bytes(data[10:14], "little")
    class_len = int.from_bytes(data[14:18], "little")
    cursor = 18
    significance_blob = data[cursor : cursor + significance_len]
    cursor += significance_len
    class_blob = data[cursor : cursor + class_len]
    cursor += class_len
    magnitude_blob = data[cursor:]

    total = num_blocks * block_size * block_size
    significance_bits = np.unpackbits(
        np.frombuffer(zlib.decompress(significance_blob), dtype=np.uint8)
    )[:total]
    flat = np.zeros(total, dtype=np.int64)

    if num_nonzero:
        class_codes = _unpack_bitfields(
            zlib.decompress(class_blob), np.full(num_nonzero, 5, dtype=np.int64)
        )
        bit_lengths = class_codes.astype(np.int64) + 1
        codes = _unpack_bitfields(zlib.decompress(magnitude_blob), bit_lengths)
        signs = (codes & np.uint64(1)).astype(bool)
        mantissas = codes >> np.uint64(1)
        magnitudes = mantissas | (np.uint64(1) << (bit_lengths - 1).astype(np.uint64))
        values = magnitudes.astype(np.int64)
        values[signs] = -values[signs]
        flat[significance_bits.astype(bool)] = values

    zigzag = zigzag_indices(block_size)
    per_block = flat.reshape(block_size * block_size, num_blocks).T
    unscrambled = np.empty_like(per_block)
    unscrambled[:, zigzag] = per_block
    return unscrambled.reshape(num_blocks, block_size, block_size).astype(np.int32)
