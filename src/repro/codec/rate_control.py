"""Rate control: target bytes in, QP out.

Implements the property that makes 2D codecs *directly* bandwidth
adaptive (paper section 1): the application hands the encoder a target
rate and the encoder picks the quality parameter internally.

The controller maintains an exponential rate model

    size(qp) = alpha * 2^(-qp / 6)

(one halving of size per +6 QP, the H.26x step-doubling rule).  After
each frame, ``alpha`` is re-estimated from the observed (QP, size) pair
and smoothed; the next proposal inverts the model.  Per-frame QP motion
is clamped to avoid visible quality oscillation.
"""

from __future__ import annotations

import math

from repro.codec.quant import QP_MAX, QP_MAX_EXTENDED, QP_MIN

__all__ = ["RateController"]


class RateController:
    """Exponential-model rate controller with clamped QP steps."""

    def __init__(
        self,
        initial_qp: int = 32,
        qp_min: int = QP_MIN,
        qp_max: int = QP_MAX,
        max_step: int = 6,
        smoothing: float = 0.5,
        retry_overshoot: float = 1.3,
    ) -> None:
        if not QP_MIN <= qp_min < qp_max <= QP_MAX_EXTENDED:
            raise ValueError("require QP_MIN <= qp_min < qp_max <= QP_MAX_EXTENDED")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.qp_min = qp_min
        self.qp_max = qp_max
        self.max_step = max_step
        self.smoothing = smoothing
        self.retry_overshoot = retry_overshoot
        self._last_qp = int(min(max(initial_qp, qp_min), qp_max))
        self._alpha: float | None = None

    @property
    def last_qp(self) -> int:
        """QP used for the most recent frame."""
        return self._last_qp

    def _model_qp(self, target_bytes: int) -> float:
        assert self._alpha is not None
        if target_bytes <= 0:
            return float(self.qp_max)
        return 6.0 * math.log2(self._alpha / target_bytes)

    def propose_qp(self, target_bytes: int) -> int:
        """QP to use for the next frame at the given byte budget."""
        if self._alpha is None:
            return self._last_qp
        raw = self._model_qp(target_bytes)
        stepped = min(max(raw, self._last_qp - self.max_step), self._last_qp + self.max_step)
        return int(round(min(max(stepped, self.qp_min), self.qp_max)))

    def retry_qp(self, qp_used: int, size_bytes: int, target_bytes: int) -> int | None:
        """QP for a one-shot re-encode, or None if the first try is fine.

        A retry is requested only on a large overshoot: undershoot wastes
        a little bandwidth, but overshoot causes queueing and stalls
        (paper section 4.3: "LiVo's infrequent stalls occur when the
        rate-adaptive codec overshoots the bandwidth target").
        """
        if size_bytes <= target_bytes * self.retry_overshoot:
            return None
        # From the observed point: bits halve per +6 QP.
        needed = 6.0 * math.log2(size_bytes / target_bytes)
        retry = int(round(qp_used + max(needed, 1.0)))
        retry = min(max(retry, self.qp_min), self.qp_max)
        return retry if retry > qp_used else None

    def update(self, qp_used: int, size_bytes: int, target_bytes: int) -> None:
        """Fold an observed (QP, size) pair into the rate model."""
        if size_bytes <= 0:
            return
        observed_alpha = size_bytes * (2.0 ** (qp_used / 6.0))
        if self._alpha is None:
            self._alpha = observed_alpha
        else:
            self._alpha += self.smoothing * (observed_alpha - self._alpha)
        self._last_qp = int(qp_used)
