"""2D video codec substrate.

A from-scratch block-transform video codec playing the role the paper
assigns to H.265/nvenc: 8x8 DCT, intra- and inter-predicted frames with
a GOP structure, dead-zone quantization driven by a quality parameter
(QP), an entropy stage, and -- the property LiVo's design hinges on --
**direct rate adaptation**: the encoder accepts a target bitrate and
internally controls QP to hit it (paper section 1: "such a codec takes a
desired bandwidth as input and attempts to encode the frame at that
target bandwidth by internally controlling the quality parameter").

Supported pixel formats mirror the two modes LiVo uses:

- ``uint8`` ``(H, W, 3)`` color (BGRA-in-paper; RGB here) via YCbCr;
- ``uint16`` ``(H, W)`` single plane -- the Y444_16LE-like 16-bit Y mode
  used for depth (paper section 3.2).
"""

# Lazy exports (PEP 562): ``repro.codec.video`` imports the batch
# plane, which imports codec *submodules* -- an eager import here would
# close that loop whenever the batch plane loads first (the session
# service's worker pool does exactly that).
_EXPORTS = {
    "EncodedFrame": "repro.codec.frame",
    "FrameType": "repro.codec.frame",
    "qp_to_step": "repro.codec.quant",
    "RateController": "repro.codec.rate_control",
    "VideoCodecConfig": "repro.codec.video",
    "VideoDecoder": "repro.codec.video",
    "VideoEncoder": "repro.codec.video",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.codec' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
