"""2D video codec substrate.

A from-scratch block-transform video codec playing the role the paper
assigns to H.265/nvenc: 8x8 DCT, intra- and inter-predicted frames with
a GOP structure, dead-zone quantization driven by a quality parameter
(QP), an entropy stage, and -- the property LiVo's design hinges on --
**direct rate adaptation**: the encoder accepts a target bitrate and
internally controls QP to hit it (paper section 1: "such a codec takes a
desired bandwidth as input and attempts to encode the frame at that
target bandwidth by internally controlling the quality parameter").

Supported pixel formats mirror the two modes LiVo uses:

- ``uint8`` ``(H, W, 3)`` color (BGRA-in-paper; RGB here) via YCbCr;
- ``uint16`` ``(H, W)`` single plane -- the Y444_16LE-like 16-bit Y mode
  used for depth (paper section 3.2).
"""

from repro.codec.frame import EncodedFrame, FrameType
from repro.codec.quant import qp_to_step
from repro.codec.rate_control import RateController
from repro.codec.video import VideoCodecConfig, VideoDecoder, VideoEncoder

__all__ = [
    "EncodedFrame",
    "FrameType",
    "qp_to_step",
    "RateController",
    "VideoCodecConfig",
    "VideoDecoder",
    "VideoEncoder",
]
