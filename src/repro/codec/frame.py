"""Encoded-frame container and bitstream serialization.

An :class:`EncodedFrame` is what the encoder emits and the transport
packetizes: a self-describing byte payload plus the metadata the decoder
and the rate controller need (frame type, QP, pixel format, size).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

__all__ = ["FrameType", "PixelFormat", "EncodedFrame"]


class FrameType(enum.Enum):
    """Frame prediction type within the GOP."""

    INTRA = "I"
    INTER = "P"


class PixelFormat(enum.Enum):
    """Supported input pixel formats."""

    RGB8 = "rgb8"       # (H, W, 3) uint8, coded as YCbCr
    GRAY16 = "gray16"   # (H, W) uint16, the 16-bit-Y depth mode


_HEADER = struct.Struct("<4sBBBBIHHI")
_MAGIC = b"LVF1"
_FRAME_TYPE_CODE = {FrameType.INTRA: 0, FrameType.INTER: 1}
_FRAME_TYPE_FROM = {value: key for key, value in _FRAME_TYPE_CODE.items()}
_FORMAT_CODE = {PixelFormat.RGB8: 0, PixelFormat.GRAY16: 1}
_FORMAT_FROM = {value: key for key, value in _FORMAT_CODE.items()}


@dataclass(frozen=True)
class EncodedFrame:
    """One compressed video frame."""

    frame_type: FrameType
    pixel_format: PixelFormat
    qp: int
    sequence: int
    height: int
    width: int
    payload: bytes

    @property
    def size_bytes(self) -> int:
        """Total wire size including the frame header."""
        return _HEADER.size + len(self.payload)

    @property
    def size_bits(self) -> int:
        """Total wire size in bits."""
        return self.size_bytes * 8

    def to_bytes(self) -> bytes:
        """Serialize for transport."""
        header = _HEADER.pack(
            _MAGIC,
            _FRAME_TYPE_CODE[self.frame_type],
            _FORMAT_CODE[self.pixel_format],
            self.qp,
            0,
            self.sequence,
            self.height,
            self.width,
            len(self.payload),
        )
        return header + self.payload

    @staticmethod
    def from_bytes(data: bytes) -> "EncodedFrame":
        """Parse a frame serialized by :meth:`to_bytes`."""
        if len(data) < _HEADER.size:
            raise ValueError("truncated frame header")
        magic, type_code, format_code, qp, _, sequence, height, width, payload_len = (
            _HEADER.unpack_from(data)
        )
        if magic != _MAGIC:
            raise ValueError(f"bad frame magic {magic!r}")
        payload = data[_HEADER.size : _HEADER.size + payload_len]
        if len(payload) != payload_len:
            raise ValueError("truncated frame payload")
        return EncodedFrame(
            frame_type=_FRAME_TYPE_FROM[type_code],
            pixel_format=_FORMAT_FROM[format_code],
            qp=qp,
            sequence=sequence,
            height=height,
            width=width,
            payload=payload,
        )
