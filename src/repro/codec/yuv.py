"""Color-space conversion.

LiVo's color stream is encoded in YUV (paper: BGRA input to an H.265
encoder, which converts internally); its depth stream uses a 16-bit-Y
YUV variant (Y444_16LE) with U and V pinned to a constant (section 3.2).
We implement BT.601 full-range RGB <-> YCbCr in float64 with exact
matrix inversion, so conversion error stays below quantization error.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rgb_to_ycbcr", "ycbcr_to_rgb"]

# BT.601 luma coefficients (full range).
_KR, _KG, _KB = 0.299, 0.587, 0.114

_RGB_TO_YCBCR = np.array(
    [
        [_KR, _KG, _KB],
        [-0.5 * _KR / (1 - _KB), -0.5 * _KG / (1 - _KB), 0.5],
        [0.5, -0.5 * _KG / (1 - _KR), -0.5 * _KB / (1 - _KR)],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)
_CHROMA_OFFSET = np.array([0.0, 128.0, 128.0])


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` uint8 RGB image to float64 YCbCr.

    Output channels: Y in [0, 255], Cb/Cr centered at 128.
    """
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {rgb.shape}")
    return rgb.astype(np.float64) @ _RGB_TO_YCBCR.T + _CHROMA_OFFSET


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Convert float64 YCbCr back to uint8 RGB with clipping."""
    ycbcr = np.asarray(ycbcr, dtype=np.float64)
    if ycbcr.ndim != 3 or ycbcr.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {ycbcr.shape}")
    rgb = (ycbcr - _CHROMA_OFFSET) @ _YCBCR_TO_RGB.T
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)
