"""Block (macroblock) splitting and merging.

2D video codecs operate on fixed-size pixel blocks ("2D video codecs
predict macroblocks (8x8 or 16x16 pixel blocks) within and between
frames", paper section 3.2).  These helpers turn a 2D plane into an
``(num_blocks, B, B)`` stack and back, padding by edge replication so
every plane size is legal.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pad_to_blocks",
    "split_blocks",
    "split_blocks_nd",
    "merge_blocks",
    "block_grid_shape",
]

DEFAULT_BLOCK_SIZE = 8


def block_grid_shape(height: int, width: int, block_size: int) -> tuple[int, int]:
    """Number of block rows and columns covering an ``height x width`` plane."""
    rows = -(-height // block_size)
    cols = -(-width // block_size)
    return rows, cols


def pad_to_blocks(plane: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Pad a 2D plane with edge replication to a multiple of the block size."""
    if plane.ndim != 2:
        raise ValueError(f"expected a 2D plane, got shape {plane.shape}")
    height, width = plane.shape
    rows, cols = block_grid_shape(height, width, block_size)
    pad_h = rows * block_size - height
    pad_w = cols * block_size - width
    if pad_h == 0 and pad_w == 0:
        return plane
    return np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")


def split_blocks(plane: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Split a (padded) plane into an ``(N, B, B)`` stack, row-major order."""
    plane = pad_to_blocks(plane, block_size)
    height, width = plane.shape
    rows = height // block_size
    cols = width // block_size
    return (
        plane.reshape(rows, block_size, cols, block_size)
        .swapaxes(1, 2)
        .reshape(rows * cols, block_size, block_size)
    )


def split_blocks_nd(planes: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Split a stack of planes ``(..., H, W)`` into ``(..., N, B, B)`` blocks.

    The batched twin of :func:`split_blocks`: every leading axis is
    preserved and each plane is edge-padded and split exactly as the 2D
    function would, so ``split_blocks_nd(x)[i] == split_blocks(x[i])``
    element for element.  One call covers a whole structure-of-arrays
    bucket (e.g. all sessions' planes, or all motion-shifted references)
    instead of one ``np.pad`` per plane.
    """
    if planes.ndim < 2:
        raise ValueError(f"expected (..., H, W) planes, got shape {planes.shape}")
    *lead, height, width = planes.shape
    rows, cols = block_grid_shape(height, width, block_size)
    pad_h = rows * block_size - height
    pad_w = cols * block_size - width
    if pad_h or pad_w:
        pad = [(0, 0)] * len(lead) + [(0, pad_h), (0, pad_w)]
        planes = np.pad(planes, pad, mode="edge")
    return (
        planes.reshape(*lead, rows, block_size, cols, block_size)
        .swapaxes(-3, -2)
        .reshape(*lead, rows * cols, block_size, block_size)
    )


def merge_blocks(
    blocks: np.ndarray, height: int, width: int, block_size: int = DEFAULT_BLOCK_SIZE
) -> np.ndarray:
    """Reassemble an ``(N, B, B)`` stack into an ``height x width`` plane.

    Inverse of :func:`split_blocks`; padding introduced there is cropped.
    """
    rows, cols = block_grid_shape(height, width, block_size)
    if blocks.shape != (rows * cols, block_size, block_size):
        raise ValueError(
            f"expected {(rows * cols, block_size, block_size)} blocks, got {blocks.shape}"
        )
    plane = (
        blocks.reshape(rows, cols, block_size, block_size)
        .swapaxes(1, 2)
        .reshape(rows * block_size, cols * block_size)
    )
    return plane[:height, :width]
