"""Frame sequence markers.

WebRTC strips application metadata from video frames, so LiVo embeds a
(pre-generated) QR code encoding the frame sequence number in each tiled
frame and decodes it at the receiver to re-synchronize the color and
depth streams (paper appendix A.1, following Salsify).

We substitute a simpler machine-readable pattern with the same
robustness property: each bit of a 32-bit big-endian sequence number is
painted as an ``MARKER_HEIGHT x cell_width`` block at full black / full
white.  Lossy codecs preserve such large saturated blocks easily, and
decoding thresholds each cell's mean -- majority voting over the cell's
pixels, like a QR reader's module sampling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MARKER_HEIGHT", "MARKER_BITS", "encode_marker", "decode_marker"]

MARKER_HEIGHT = 8
MARKER_BITS = 32


def _cell_edges(width: int) -> np.ndarray:
    """Column boundaries dividing ``width`` pixels into MARKER_BITS cells."""
    return np.linspace(0, width, MARKER_BITS + 1).astype(int)


def encode_marker(sequence: int, width: int, high_value: int, dtype) -> np.ndarray:
    """Render a sequence number as a marker strip.

    Args:
        sequence: frame sequence number (32-bit unsigned).
        width: strip width in pixels (must allow >= 2 px per bit cell).
        high_value: pixel value for a 1 bit (255 for uint8, 65535 for uint16).
        dtype: output dtype.

    Returns:
        ``(MARKER_HEIGHT, width)`` strip array.
    """
    if not 0 <= sequence < 2**MARKER_BITS:
        raise ValueError(f"sequence must fit in {MARKER_BITS} bits, got {sequence}")
    if width < 2 * MARKER_BITS:
        raise ValueError(f"marker needs width >= {2 * MARKER_BITS}, got {width}")
    strip = np.zeros((MARKER_HEIGHT, width), dtype=dtype)
    edges = _cell_edges(width)
    for bit in range(MARKER_BITS):
        if (sequence >> (MARKER_BITS - 1 - bit)) & 1:
            strip[:, edges[bit] : edges[bit + 1]] = high_value
    return strip


def decode_marker(strip: np.ndarray, high_value: int) -> int:
    """Read a sequence number back from a (possibly distorted) strip."""
    strip = np.asarray(strip)
    if strip.ndim != 2 or strip.shape[0] != MARKER_HEIGHT:
        raise ValueError(f"expected ({MARKER_HEIGHT}, W) strip, got {strip.shape}")
    edges = _cell_edges(strip.shape[1])
    threshold = high_value / 2.0
    sequence = 0
    for bit in range(MARKER_BITS):
        cell = strip[:, edges[bit] : edges[bit + 1]]
        if float(cell.mean()) > threshold:
            sequence |= 1 << (MARKER_BITS - 1 - bit)
    return sequence
