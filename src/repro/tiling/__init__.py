"""Stream composition: tiling N camera images into one video frame.

Paper section 3.2 ("LiVo's approach: Tiling"): rather than running 2N
parallel encoders or interleaving cameras on one stream (which defeats
inter-frame prediction), LiVo tiles the N depth images into one 4K
frame and the N downsampled color images into another.  Tiles sit at
fixed positions, so macroblock locality -- and therefore inter-frame
prediction -- is preserved.

A sequence marker (the paper embeds a QR code; we embed a robust binary
block pattern) is written into a reserved strip of each tiled frame so
the receiver can re-associate color and depth frames that traveled on
different streams (appendix A.1).
"""

from repro.tiling.marker import decode_marker, encode_marker, MARKER_HEIGHT
from repro.tiling.tiler import TileLayout, Tiler

__all__ = [
    "decode_marker",
    "encode_marker",
    "MARKER_HEIGHT",
    "TileLayout",
    "Tiler",
]
