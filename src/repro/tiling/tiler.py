"""The tiler: N per-camera images <-> one composed video frame.

Tiles occupy fixed grid positions ("images from the same camera are
located at the same spot in the tiled image", paper section 3.2), so the
2D codec's inter-frame prediction sees stationary content.  A marker
strip along the bottom carries the frame sequence number (appendix A.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.tiling.marker import MARKER_HEIGHT, decode_marker, encode_marker

__all__ = ["TileLayout", "Tiler"]


@dataclass(frozen=True)
class TileLayout:
    """Grid geometry for composing ``num_tiles`` images of one size."""

    num_tiles: int
    tile_height: int
    tile_width: int
    rows: int
    cols: int

    @staticmethod
    def for_cameras(num_tiles: int, tile_height: int, tile_width: int) -> "TileLayout":
        """Choose a near-square grid (10 cameras -> 2 x 5, like Fig. 3)."""
        if num_tiles <= 0:
            raise ValueError("num_tiles must be positive")
        if tile_height <= 0 or tile_width <= 0:
            raise ValueError("tile dimensions must be positive")
        rows = int(math.floor(math.sqrt(num_tiles)))
        while num_tiles % rows != 0:
            rows -= 1
        cols = num_tiles // rows
        return TileLayout(num_tiles, tile_height, tile_width, rows, cols)

    @property
    def frame_height(self) -> int:
        """Composed frame height including the marker strip."""
        return self.rows * self.tile_height + MARKER_HEIGHT

    @property
    def frame_width(self) -> int:
        """Composed frame width."""
        return self.cols * self.tile_width

    def tile_slice(self, index: int) -> tuple[slice, slice]:
        """Row/column slices of tile ``index`` within the composed frame."""
        if not 0 <= index < self.num_tiles:
            raise IndexError(f"tile index {index} out of range")
        row, col = divmod(index, self.cols)
        return (
            slice(row * self.tile_height, (row + 1) * self.tile_height),
            slice(col * self.tile_width, (col + 1) * self.tile_width),
        )

    @property
    def marker_slice(self) -> tuple[slice, slice]:
        """Slices of the marker strip (bottom of the frame)."""
        return slice(self.rows * self.tile_height, self.frame_height), slice(
            0, self.frame_width
        )


class Tiler:
    """Compose/decompose per-camera images for one stream (color or depth)."""

    def __init__(self, layout: TileLayout, is_color: bool) -> None:
        self.layout = layout
        self.is_color = is_color
        self._high = 255 if is_color else 65535
        self._dtype = np.uint8 if is_color else np.uint16

    def compose(self, images: list[np.ndarray], sequence: int) -> np.ndarray:
        """Tile per-camera images into one frame with a sequence marker."""
        layout = self.layout
        if len(images) != layout.num_tiles:
            raise ValueError(f"expected {layout.num_tiles} images, got {len(images)}")
        shape: tuple[int, ...] = (layout.frame_height, layout.frame_width)
        if self.is_color:
            shape = shape + (3,)
        frame = np.zeros(shape, dtype=self._dtype)
        for index, image in enumerate(images):
            image = np.asarray(image, dtype=self._dtype)
            expected = (layout.tile_height, layout.tile_width) + ((3,) if self.is_color else ())
            if image.shape != expected:
                raise ValueError(f"tile {index}: expected shape {expected}, got {image.shape}")
            rows, cols = layout.tile_slice(index)
            frame[rows, cols] = image
        marker = encode_marker(sequence, layout.frame_width, self._high, self._dtype)
        rows, cols = layout.marker_slice
        if self.is_color:
            frame[rows, cols] = marker[..., None]
        else:
            frame[rows, cols] = marker
        return frame

    def decompose(self, frame: np.ndarray) -> tuple[list[np.ndarray], int]:
        """Split a (decoded, possibly distorted) frame back into tiles.

        Returns the per-camera images and the decoded sequence number.
        """
        layout = self.layout
        expected = (layout.frame_height, layout.frame_width) + ((3,) if self.is_color else ())
        frame = np.asarray(frame)
        if frame.shape != expected:
            raise ValueError(f"expected frame shape {expected}, got {frame.shape}")
        images = []
        for index in range(layout.num_tiles):
            rows, cols = layout.tile_slice(index)
            images.append(frame[rows, cols].copy())
        rows, cols = layout.marker_slice
        strip = frame[rows, cols]
        if self.is_color:
            strip = strip.mean(axis=2)
        sequence = decode_marker(strip, self._high)
        return images, sequence
