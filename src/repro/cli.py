"""Command-line interface: run sessions and inspect workloads.

Usage (after ``python setup.py develop``)::

    python -m repro videos                     # list evaluation videos
    python -m repro schemes                    # list comparison schemes
    python -m repro traces                     # Table 4 trace statistics
    python -m repro run --video band2 --scheme LiVo --net-trace trace-1
    python -m repro run --video band2 --trace /tmp/session.json   # Perfetto
    python -m repro export --video pizza1 --out /tmp/pizza1
    python -m repro multiway --mode sfu --receivers 4   # SFU fan-out
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LiVo reproduction: bandwidth-adaptive volumetric conferencing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("videos", help="list the Table 3 evaluation videos")
    sub.add_parser("schemes", help="list the comparison schemes (Table 2)")
    sub.add_parser("traces", help="print Table 4 bandwidth trace statistics")

    run = sub.add_parser("run", help="replay one session and print its report")
    run.add_argument("--video", default="band2")
    run.add_argument(
        "--scheme",
        default="LiVo",
        choices=["LiVo", "LiVo-NoCull", "LiVo-NoAdapt", "Draco-Oracle", "MeshReduce"],
    )
    run.add_argument(
        "--net-trace", default="trace-1", choices=["trace-1", "trace-2"],
        help="bandwidth trace to replay (Table 4)",
    )
    run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record per-frame spans and write a Chrome trace_event JSON "
        "(open in Perfetto / chrome://tracing); LiVo schemes only",
    )
    run.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="also/instead write the raw span records as JSONL",
    )
    run.add_argument("--frames", type=int, default=30)
    run.add_argument("--user", type=int, default=0, help="user trace index (0-2)")
    run.add_argument("--cameras", type=int, default=8)
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker count for the stage-graph runtime (1 = serial, deterministic)",
    )
    run.add_argument(
        "--executor", default="auto",
        choices=["auto", "serial", "thread", "process"],
        help="executor substrate (auto picks serial at --jobs 1, processes above)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="print the per-stage wall-clock timing breakdown after the run",
    )
    run.add_argument(
        "--no-kernel-cache", action="store_true",
        help="disable the kernel-cache layer (incremental capture, quality "
        "feature cache, codec scratch reuse); outputs are byte-identical "
        "either way",
    )
    run.add_argument(
        "--no-transport-fast-path", action="store_true",
        help="disable the batched transport fast path (per-packet scalar "
        "simulation); outputs are byte-identical either way",
    )
    run.add_argument(
        "--quality-max-points", type=int, default=None,
        help="stratified-subsample clouds above this size before PointSSIM "
        "(deterministic approximation; default: exact scoring)",
    )
    run.add_argument(
        "--no-batch-kernels", action="store_true",
        help="disable the batched capture/unproject/PointSSIM kernels "
        "(per-item reference paths); outputs are byte-identical either way",
    )
    run.add_argument(
        "--no-shm", action="store_true",
        help="disable the shared-memory zero-copy lane of the process "
        "executor (payloads cross as pickles); outputs are byte-identical "
        "either way",
    )
    run.add_argument(
        "--no-batch-plane", action="store_true",
        help="disable the batch plane (encoders run the per-stream serial "
        "schedule instead of co-batched kernel buckets); outputs are "
        "byte-identical either way",
    )

    analyze = sub.add_parser(
        "analyze-trace",
        help="reconstruct the per-stage critical path of a span JSONL "
        "export; with two files, diff them (before after)",
    )
    analyze.add_argument(
        "traces", nargs="+", metavar="TRACE_JSONL",
        help="one trace prints its critical path; two diff them "
        "(before, after)",
    )
    analyze.add_argument(
        "--categories", default="stage",
        help="comma-separated span categories to include (default: stage; "
        "e.g. stage,kernel,worker)",
    )
    analyze.add_argument(
        "--fleet", action="store_true",
        help="fleet-trace mode: include lockstep batch-plane spans "
        "(categories stage,batch unless --categories overrides) and count "
        "frames per (session, frame) pair",
    )
    analyze.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative movement below this is reported unchanged",
    )

    export = sub.add_parser(
        "export", help="dump one capture's frames and point cloud to files"
    )
    export.add_argument("--video", default="band2")
    export.add_argument("--out", required=True, help="output directory")
    export.add_argument("--frame", type=int, default=0)

    multiway = sub.add_parser(
        "multiway", help="run a one-sender/N-receiver conference and print stats"
    )
    multiway.add_argument("--video", default="pizza1")
    multiway.add_argument(
        "--mode", default="shared", choices=["shared", "unicast", "sfu"],
        help="fan-out architecture: per-receiver pipelines (unicast), one "
        "union-culled stream (shared), or an SFU node forwarding tailored "
        "per-receiver downlinks (sfu)",
    )
    multiway.add_argument("--receivers", type=int, default=3)
    multiway.add_argument("--frames", type=int, default=30)
    multiway.add_argument("--cameras", type=int, default=4)
    multiway.add_argument(
        "--target-mbps", type=float, default=2.0,
        help="per-stream encode target (and SFU downlink capacity)",
    )

    serve = sub.add_parser(
        "serve",
        help="host the session service (REST-ish control plane + tick workers)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8350)
    serve.add_argument("--video", default="office1")
    serve.add_argument("--cameras", type=int, default=2)
    serve.add_argument(
        "--tick-interval", type=float, default=1.0 / 30.0,
        help="seconds between tick rounds (0 = free-running)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="thread fan-out for serial ticks (batch plane ignores it)",
    )
    serve.add_argument("--no-batch-plane", action="store_true")

    # ``loadgen`` is routed in main() before this parser (its flags
    # belong to repro.service.loadgen); registered here for --help only.
    sub.add_parser(
        "loadgen",
        help="drive the session service with deterministic seeded churn "
        "and write BENCH_service.json (see `repro loadgen --help`)",
        add_help=False,
    )

    return parser


def _cmd_videos() -> int:
    from repro.capture.dataset import PANOPTIC_VIDEOS

    print(f"{'name':9s} {'objects':>8s} {'paper dur':>10s} {'description'}")
    for spec in PANOPTIC_VIDEOS.values():
        print(
            f"{spec.name:9s} {spec.paper_objects:8d} {spec.paper_duration_s:9d}s "
            f"{spec.description}"
        )
    return 0


def _cmd_schemes() -> int:
    from repro.core.schemes import SCHEMES

    for spec in SCHEMES.values():
        print(
            f"{spec.name:13s} {spec.kind:13s} compr={spec.compression:3s} "
            f"adapt={spec.bandwidth_adaptive:9s} fps={spec.fps} "
            f"cull={'yes' if spec.culls else 'no'}"
        )
    return 0


def _cmd_traces() -> int:
    from repro.transport.traces import trace_1, trace_2

    print(f"{'trace':9s} {'mean':>8s} {'max':>8s} {'min':>8s} {'p90':>8s} {'p10':>8s}")
    for name, trace in (("trace-1", trace_1(600)), ("trace-2", trace_2(600))):
        stats = trace.stats()
        print(
            f"{name:9s} {stats.mean:8.2f} {stats.max:8.2f} {stats.min:8.2f} "
            f"{stats.p90:8.2f} {stats.p10:8.2f}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.capture.dataset import load_video
    from repro.core.config import SchemeFlags, SessionConfig
    from repro.core.session import DracoOracleSession, LiVoSession, MeshReduceSession
    from repro.prediction.pose import user_traces_for_video
    from repro.transport.traces import trace_1, trace_2

    tracing = args.trace is not None or args.trace_jsonl is not None
    if tracing and args.scheme not in ("LiVo", "LiVo-NoCull", "LiVo-NoAdapt"):
        print(
            "error: --trace/--trace-jsonl instrument the LiVo pipeline only "
            f"(scheme {args.scheme!r} is untraced)",
            file=sys.stderr,
        )
        return 2

    _, scene = load_video(args.video, sample_budget=20_000)
    user = user_traces_for_video(args.video, args.frames + 10)[args.user]
    bandwidth = (
        trace_1(duration_s=30) if args.net_trace == "trace-1" else trace_2(duration_s=30)
    )

    flags = SchemeFlags(
        culling=args.scheme == "LiVo",
        adaptation=args.scheme != "LiVo-NoAdapt",
    )
    config = SessionConfig(
        num_cameras=args.cameras, camera_width=64, camera_height=48,
        scene_sample_budget=20_000, gop_size=15, scheme=flags,
        jobs=args.jobs, executor=args.executor, profile=args.profile,
        kernel_cache=not args.no_kernel_cache,
        quality_max_points=args.quality_max_points,
        transport_fast_path=not args.no_transport_fast_path,
        batch_kernels=not args.no_batch_kernels,
        shm=not args.no_shm,
        batch_plane=not args.no_batch_plane,
        trace=tracing,
    )
    if args.scheme in ("LiVo", "LiVo-NoCull", "LiVo-NoAdapt"):
        report = LiVoSession(config).run(
            scene, user, bandwidth, args.frames,
            video_name=args.video, scheme_name=args.scheme,
        )
    elif args.scheme == "Draco-Oracle":
        report = DracoOracleSession(config).run(
            scene, user, bandwidth, args.frames, video_name=args.video
        )
    else:
        report = MeshReduceSession(config).run(
            scene, user, bandwidth, args.frames, video_name=args.video
        )
    print(report.summary())
    if args.profile:
        print()
        print(report.timing_table())
        if report.cache_stats:
            print()
            print(report.cache_table())
    if tracing and report.trace is not None:
        from repro.obs.export import write_chrome_trace, write_spans_jsonl

        spans = report.trace.spans()
        if args.trace is not None:
            write_chrome_trace(
                spans,
                args.trace,
                metadata={"scheme": args.scheme, "video": args.video},
            )
            print(f"wrote Chrome trace ({len(spans)} spans) to {args.trace}")
        if args.trace_jsonl is not None:
            write_spans_jsonl(spans, args.trace_jsonl)
            print(f"wrote span JSONL ({len(spans)} spans) to {args.trace_jsonl}")
        print()
        print(report.timeline_table(limit=10))
    return 0


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    from repro.analysis.tracetools import (
        FLEET_CATEGORIES,
        critical_path_from_jsonl,
        diff_critical_paths,
        format_critical_path,
        format_diff,
    )

    if len(args.traces) > 2:
        print("error: analyze-trace takes one or two trace files", file=sys.stderr)
        return 2
    categories = tuple(
        part.strip() for part in args.categories.split(",") if part.strip()
    )
    if args.fleet and args.categories == "stage":
        categories = FLEET_CATEGORIES
    paths = [
        critical_path_from_jsonl(trace, categories=categories)
        for trace in args.traces
    ]
    if len(paths) == 1:
        print(format_critical_path(paths[0], title=str(args.traces[0])))
        return 0
    diff = diff_critical_paths(paths[0], paths[1], rel_tolerance=args.tolerance)
    print(f"before: {args.traces[0]}")
    print(f"after:  {args.traces[1]}")
    print(format_diff(diff))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.capture.dataset import load_video
    from repro.capture.rig import default_rig
    from repro.geometry.pointcloud import PointCloud
    from repro.viz import depth_to_color, write_ply, write_ppm

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    _, scene = load_video(args.video, sample_budget=20_000)
    rig = default_rig(num_cameras=8, width=64, height=48)
    frame = rig.capture(scene, args.frame)
    for view, camera in zip(frame.views, rig.cameras):
        write_ppm(out / f"cam{view.camera_id:02d}_color.ppm", view.color)
        write_ppm(out / f"cam{view.camera_id:02d}_depth.ppm", depth_to_color(view.depth_mm))
    clouds = [
        camera.unproject(view.depth_mm, view.color)
        for camera, view in zip(rig.cameras, frame.views)
    ]
    cloud = PointCloud.merge(clouds)
    write_ply(out / "frame.ply", cloud)
    print(f"wrote {2 * len(frame.views)} images and frame.ply ({len(cloud)} points) to {out}")
    return 0


def _cmd_multiway(args: argparse.Namespace) -> int:
    from repro.capture.dataset import load_video
    from repro.capture.rig import default_rig
    from repro.core.config import SessionConfig
    from repro.core.multiway import MultiwaySender
    from repro.perf.capture import CachedFrameSource
    from repro.prediction.pose import user_traces_for_video
    from repro.transport.traces import constant_trace

    config = SessionConfig(
        num_cameras=args.cameras, camera_width=48, camera_height=36,
        scene_sample_budget=6000, gop_size=10,
    )
    _, scene = load_video(args.video, sample_budget=6000)
    rig = default_rig(num_cameras=args.cameras, width=48, height=36)
    source = CachedFrameSource(rig, scene)
    pose_traces = user_traces_for_video(args.video, args.frames + 10)
    names = [f"rx{index}" for index in range(args.receivers)]
    target_bps = args.target_mbps * 1e6
    kwargs = {}
    if args.mode == "sfu":
        kwargs["default_downlink_trace"] = constant_trace(
            args.target_mbps, duration_s=args.frames / config.fps + 10.0
        )
    sender = MultiwaySender(rig.cameras, config, names, mode=args.mode, **kwargs)
    horizon_s = config.pose_feedback_lag_frames * config.frame_interval_s
    uplink = downlink = encoder_runs = 0
    for sequence in range(args.frames):
        now = sequence * config.frame_interval_s
        for index, name in enumerate(names):
            pose = pose_traces[index % len(pose_traces)].pose_at_frame(sequence)
            sender.observe_pose(name, pose, now)
        result = sender.process(source.capture(sequence), target_bps, horizon_s)
        uplink += result.total_bytes
        downlink += result.downlink_bytes
        encoder_runs += result.encoder_runs
    sender.close()
    print(
        f"mode={args.mode} receivers={args.receivers} frames={args.frames}\n"
        f"uplink: {uplink} B total, {uplink / args.frames:.0f} B/frame\n"
        f"encoder runs: {encoder_runs} "
        f"({encoder_runs / args.frames:.1f}/frame)"
    )
    if args.mode == "sfu":
        print(
            f"downlink: {downlink} B total across {args.receivers} receivers "
            f"({downlink / args.frames:.0f} B/frame)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service.app import ServiceConfig, ServiceHandle

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        video=args.video,
        num_cameras=args.cameras,
        tick_interval_s=args.tick_interval,
        jobs=args.jobs,
        batch_plane=not args.no_batch_plane,
    )
    handle = ServiceHandle(config).start()
    print(
        f"session service on http://{handle.host}:{handle.port} "
        f"(video={args.video}, batch_plane={config.batch_plane}); Ctrl-C stops"
    )
    done = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: done.set())
    signal.signal(signal.SIGTERM, lambda *_: done.set())
    # Timed wait: the kernel may deliver the signal to a worker thread,
    # and the tripped flag is only processed when the main thread runs
    # bytecode — an untimed wait() would block it forever.
    while not done.wait(0.2):
        pass
    print("shutting down: draining sessions...")
    handle.stop()
    leaked = handle.app.registry.live_drivers()
    print(f"stopped ({leaked} leaked drivers)")
    return 0 if leaked == 0 else 1


_SCENARIO_FLAGS = {
    "--scenario",
    "--list-scenarios",
    "--replay",
    "--replay-corpus",
    "--run-zoo",
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # Scenario commands use top-level flags (`python -m repro --scenario
    # NAME --record r.jsonl`), routed before the subcommand parser.
    if argv and (argv[0] == "scenario" or argv[0].split("=")[0] in _SCENARIO_FLAGS):
        from repro.scenario.cli import main as scenario_main

        return scenario_main(argv[1:] if argv[0] == "scenario" else argv)
    # Loadgen owns its own flag set (repro.service.loadgen); route it
    # before the subcommand parser so its options pass through.
    if argv and argv[0] == "loadgen":
        from repro.service.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "videos":
        return _cmd_videos()
    if args.command == "schemes":
        return _cmd_schemes()
    if args.command == "traces":
        return _cmd_traces()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "analyze-trace":
        return _cmd_analyze_trace(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "multiway":
        return _cmd_multiway(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")
