"""Analysis helpers: aggregate session reports, format result tables.

The evaluation aggregates many replay sessions into per-scheme
summaries (Figs. 5-14 all do this).  This package makes that a public
API so downstream users can run their own grids:

- :mod:`repro.analysis.aggregate` -- scheme-level aggregation of
  :class:`repro.core.stats.SessionReport` objects;
- :mod:`repro.analysis.resilience` -- chaos-suite robustness numbers
  (MTTR, frames survived degraded, crash-free rate);
- :mod:`repro.analysis.tables` -- plain-text table formatting used by
  the CLI, examples, and benches.
"""

from repro.analysis.aggregate import SchemeSummary, aggregate_reports, compare_schemes
from repro.analysis.resilience import ResilienceSummary, summarize_resilience
from repro.analysis.tables import format_table

__all__ = [
    "ResilienceSummary",
    "SchemeSummary",
    "aggregate_reports",
    "compare_schemes",
    "format_table",
    "summarize_resilience",
]
