"""Plain-text table rendering (stdlib only)."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(
    rows: list[dict[str, object]],
    columns: list[str] | None = None,
    min_width: int = 6,
) -> str:
    """Render dict rows as an aligned monospace table.

    Column order follows ``columns`` when given, else the first row's
    key order.  Numbers are right-aligned, text left-aligned.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    missing = [c for c in columns if any(c not in row for row in rows)]
    if missing:
        raise ValueError(f"rows missing columns: {missing}")

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}".rstrip("0").rstrip(".") if value == value else "nan"
        return str(value)

    rendered = [[cell(row[c]) for c in columns] for row in rows]
    widths = [
        max(min_width, len(c), *(len(r[i]) for r in rendered))
        for i, c in enumerate(columns)
    ]

    def align(text: str, width: int, value: object) -> str:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return text.rjust(width)
        return text.ljust(width)

    header = "  ".join(c.rjust(w) for c, w in zip(columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(
            align(text, width, rows[row_index][column])
            for text, width, column in zip(rendered[row_index], widths, columns)
        )
        for row_index in range(len(rows))
    ]
    return "\n".join([header, separator, *body])
