"""Trace-driven critical-path analysis and before/after diffing.

Consumes the span JSONL exports produced by :mod:`repro.obs.export`
(``python -m repro run --trace-jsonl out.jsonl``) and answers the two
questions a performance change raises:

- *where does the time go?* -- :func:`critical_path` reconstructs the
  per-frame critical path from the wall-clock stage spans (stages run
  sequentially within a frame, so the path is the ordered stage chain
  and its length the sum of stage durations), then aggregates per
  stage across frames;
- *what did a change do?* -- :func:`diff_critical_paths` lines up two
  reconstructions (before/after) and names the stages that regressed
  or improved, by how much, and how the end-to-end critical path
  moved.

The CLI front end is ``python -m repro analyze-trace A.jsonl B.jsonl``
(one file prints the path; two diff them); benchmarks commit these
diffs next to their numbers so a speedup claim is traceable to the
stages that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.export import read_spans_jsonl
from repro.obs.span import CLOCK_WALL, Span

__all__ = [
    "FLEET_CATEGORIES",
    "StageStat",
    "CriticalPath",
    "StageDelta",
    "CriticalPathDiff",
    "critical_path",
    "critical_path_from_jsonl",
    "diff_critical_paths",
    "diff_jsonl",
    "format_critical_path",
    "format_diff",
]

# Wall-clock span categories that constitute executed pipeline work.
DEFAULT_CATEGORIES = ("stage",)

# Fleet traces add lockstep batch-plane spans ("batch") on top of the
# per-conference stage spans; ``analyze-trace --fleet`` selects these.
FLEET_CATEGORIES = ("stage", "batch")

# A stage moving less than this (relative) is reported as unchanged:
# wall-clock spans jitter, and a diff full of ±2% noise buries the
# signal the tool exists to surface.
DEFAULT_REL_TOLERANCE = 0.05


@dataclass
class StageStat:
    """Aggregate wall-clock time of one stage across all frames."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        self.max_s = max(self.max_s, duration_s)


@dataclass
class CriticalPath:
    """Per-stage aggregation of a trace's frame critical paths."""

    stages: dict[str, StageStat] = field(default_factory=dict)
    frames: int = 0
    # Distinct sessions that contributed spans (1 for single-session
    # traces; the conference count for fleet traces).
    sessions: int = 1
    # Sum over frames of that frame's critical-path length.
    total_s: float = 0.0

    def ordered(self) -> list[StageStat]:
        """Stages, heaviest first."""
        return sorted(self.stages.values(), key=lambda s: -s.total_s)


def critical_path(
    spans: list[Span], categories: tuple = DEFAULT_CATEGORIES
) -> CriticalPath:
    """Reconstruct the per-stage critical path from a span list.

    Only closed wall-clock spans of the given categories participate:
    sim-clock spans (frame roots, transport, playout) describe the
    simulated session, not executed work.  Stages within one frame run
    sequentially in the runtime, so a frame's critical-path length is
    the sum of its stage durations; the aggregate keys stages by name
    across frames.

    Fleet traces interleave many conferences into one export, with each
    stage span tagged with a ``session`` attribute; a "frame" is then a
    distinct ``(session, trace_id)`` pair so per-frame means stay
    per-session-frame.  Spans without a trace id (e.g. lockstep batch
    buckets, which span sessions) count toward stage totals but not the
    frame denominator.
    """
    path = CriticalPath()
    frames: set = set()
    sessions: set = set()
    for span in spans:
        if span.clock != CLOCK_WALL or span.category not in categories:
            continue
        if span.open or span.instant:
            continue
        stat = path.stages.get(span.name)
        if stat is None:
            stat = path.stages[span.name] = StageStat(span.name)
        stat.add(span.duration_s)
        path.total_s += span.duration_s
        session = span.attrs.get("session")
        if session is not None:
            sessions.add(session)
        if span.trace_id is not None:
            frames.add((session, span.trace_id))
    path.frames = len(frames)
    path.sessions = max(1, len(sessions))
    return path


def critical_path_from_jsonl(
    path, categories: tuple = DEFAULT_CATEGORIES
) -> CriticalPath:
    """Load a span JSONL export and reconstruct its critical path."""
    return critical_path(read_spans_jsonl(path), categories=categories)


@dataclass
class StageDelta:
    """One stage's before/after movement."""

    name: str
    before_s: float
    after_s: float
    before_count: int
    after_count: int
    verdict: str  # "regressed" | "improved" | "unchanged" | "added" | "removed"

    @property
    def delta_s(self) -> float:
        return self.after_s - self.before_s

    @property
    def ratio(self) -> float:
        """after / before (inf for added stages)."""
        if self.before_s <= 0.0:
            return float("inf") if self.after_s > 0.0 else 1.0
        return self.after_s / self.before_s


@dataclass
class CriticalPathDiff:
    """A full before/after critical-path comparison."""

    before: CriticalPath
    after: CriticalPath
    deltas: list[StageDelta]

    @property
    def regressed(self) -> list[StageDelta]:
        return [d for d in self.deltas if d.verdict in ("regressed", "added")]

    @property
    def improved(self) -> list[StageDelta]:
        return [d for d in self.deltas if d.verdict in ("improved", "removed")]

    @property
    def speedup(self) -> float:
        """End-to-end critical-path speedup (before / after)."""
        if self.after.total_s <= 0.0:
            return float("inf") if self.before.total_s > 0.0 else 1.0
        return self.before.total_s / self.after.total_s


def diff_critical_paths(
    before: CriticalPath,
    after: CriticalPath,
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
) -> CriticalPathDiff:
    """Line up two critical paths and classify every stage's movement.

    A stage regresses/improves when its total moves by more than
    ``rel_tolerance`` of the *before* total (stages only present on one
    side are "added"/"removed").  Deltas are sorted by absolute time
    moved, so the first entries are the stages that matter.
    """
    names = list(
        dict.fromkeys(list(before.stages) + list(after.stages))
    )  # insertion-ordered union
    deltas = []
    for name in names:
        b = before.stages.get(name)
        a = after.stages.get(name)
        before_s = b.total_s if b else 0.0
        after_s = a.total_s if a else 0.0
        if b is None:
            verdict = "added"
        elif a is None:
            verdict = "removed"
        else:
            threshold = rel_tolerance * max(before_s, 1e-12)
            if after_s > before_s + threshold:
                verdict = "regressed"
            elif after_s < before_s - threshold:
                verdict = "improved"
            else:
                verdict = "unchanged"
        deltas.append(
            StageDelta(
                name=name,
                before_s=before_s,
                after_s=after_s,
                before_count=b.count if b else 0,
                after_count=a.count if a else 0,
                verdict=verdict,
            )
        )
    deltas.sort(key=lambda d: -abs(d.delta_s))
    return CriticalPathDiff(before=before, after=after, deltas=deltas)


def diff_jsonl(
    before_path,
    after_path,
    categories: tuple = DEFAULT_CATEGORIES,
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
) -> CriticalPathDiff:
    """Load two span JSONL exports and diff their critical paths."""
    return diff_critical_paths(
        critical_path_from_jsonl(before_path, categories=categories),
        critical_path_from_jsonl(after_path, categories=categories),
        rel_tolerance=rel_tolerance,
    )


def format_critical_path(path: CriticalPath, title: str = "critical path") -> str:
    """Human-readable per-stage breakdown, heaviest first."""
    frames = f"{path.frames} frames"
    if path.sessions > 1:
        frames += f" across {path.sessions} sessions"
    lines = [
        f"{title}: {path.total_s * 1e3:.1f} ms over {frames}",
        f"{'stage':16s} {'count':>6s} {'total ms':>10s} {'mean ms':>9s} {'max ms':>9s}",
    ]
    for stat in path.ordered():
        lines.append(
            f"{stat.name:16s} {stat.count:6d} {stat.total_s * 1e3:10.2f} "
            f"{stat.mean_s * 1e3:9.3f} {stat.max_s * 1e3:9.3f}"
        )
    return "\n".join(lines)


def format_diff(diff: CriticalPathDiff) -> str:
    """Human-readable before/after stage diff, biggest movers first."""
    lines = [
        f"critical path: {diff.before.total_s * 1e3:.1f} ms -> "
        f"{diff.after.total_s * 1e3:.1f} ms "
        f"(speedup {diff.speedup:.2f}x)",
        f"{'stage':16s} {'verdict':>10s} {'before ms':>10s} {'after ms':>10s} "
        f"{'delta ms':>9s} {'ratio':>7s}",
    ]
    for delta in diff.deltas:
        ratio = f"{delta.ratio:.2f}x" if delta.ratio != float("inf") else "new"
        lines.append(
            f"{delta.name:16s} {delta.verdict:>10s} {delta.before_s * 1e3:10.2f} "
            f"{delta.after_s * 1e3:10.2f} {delta.delta_s * 1e3:9.2f} {ratio:>7s}"
        )
    regressed = ", ".join(d.name for d in diff.regressed) or "none"
    improved = ", ".join(d.name for d in diff.improved) or "none"
    lines.append(f"regressed: {regressed}")
    lines.append(f"improved:  {improved}")
    return "\n".join(lines)
