"""Resilience analysis for chaos-suite sessions.

Collapses the structured :class:`repro.core.stats.FaultEvent` streams
and per-frame resilience bookkeeping of one or more sessions into the
headline robustness numbers the chaos suite reports:

- **MTTR** -- mean time to recovery, the average length of completed
  degradation-ladder episodes (time from first degraded frame until the
  ladder returns to full quality).  Episodes still open at session end
  are *not* recoveries: they are reported separately as
  ``open_episodes``, and when no episode ever completed MTTR is NaN
  ("never recovered"), not 0.0 ("recovered instantly");
- **frames survived degraded** -- frames the hardening salvaged that a
  naive pipeline would have stalled or crashed on (degraded renders plus
  frame-freezes);
- **crash-free rate** -- fraction of sessions that ran to completion
  (a session that raised never produces a report, so callers pass the
  number attempted alongside the reports that completed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import SessionReport

__all__ = ["ResilienceSummary", "summarize_resilience"]

# Event categories that represent an injected or observed fault (as
# opposed to window-closing ``*_end`` edges and recovery steps).
FAULT_CATEGORIES = frozenset(
    {
        "camera_dropout",
        "camera_stale",
        "link_outage",
        "burst_loss",
        "encode_failure",
        "corrupt_frame",
        "frame_freeze",
        "frame_abandoned",
        "zero_byte_frame",
        "degrade_step",
    }
)


@dataclass(frozen=True)
class ResilienceSummary:
    """Aggregated robustness numbers across chaos sessions."""

    num_sessions: int
    sessions_attempted: int
    crash_free_rate: float
    total_fault_events: int
    mttr_s: float
    frames_survived_degraded: int
    frozen_frames: int
    degraded_renders: int
    skipped_frames: int
    rendered_frames: int
    stall_rate: float
    open_episodes: int

    def row(self) -> dict[str, float | int]:
        """Flat dict for table rendering."""
        return {
            "sessions": self.num_sessions,
            "crash_free%": round(100 * self.crash_free_rate, 1),
            "faults": self.total_fault_events,
            "mttr_s": round(self.mttr_s, 3),
            "survived": self.frames_survived_degraded,
            "frozen": self.frozen_frames,
            "degraded": self.degraded_renders,
            "rendered": self.rendered_frames,
            "stalls%": round(100 * self.stall_rate, 1),
        }


def _mttr(episode_lengths: list[float], open_episodes: int) -> float:
    """MTTR over completed episodes; NaN when nothing ever recovered.

    A session whose only degradation episodes were still open at
    session end has *no* completed recovery to average -- returning 0.0
    there would silently deflate MTTR to "instant recovery".  With no
    episodes at all (never degraded), 0.0 is the honest answer.
    """
    if episode_lengths:
        return float(np.mean(episode_lengths))
    return float("nan") if open_episodes else 0.0


def summarize_resilience(
    reports: list[SessionReport], sessions_attempted: int | None = None
) -> ResilienceSummary:
    """Aggregate the resilience outcome of chaos-suite sessions.

    ``sessions_attempted`` defaults to ``len(reports)`` (every attempt
    completed); pass the true attempt count when some sessions raised,
    so ``crash_free_rate`` reflects them.
    """
    if not reports:
        raise ValueError("need at least one report")
    attempted = sessions_attempted if sessions_attempted is not None else len(reports)
    if attempted < len(reports):
        raise ValueError("sessions_attempted cannot be below the completed count")
    episode_lengths: list[float] = []
    open_episodes = 0
    total_faults = 0
    for report in reports:
        for start, end in report.degradation_episodes():
            if end is None:
                open_episodes += 1
            else:
                episode_lengths.append(end - start)
        total_faults += sum(
            1 for event in report.fault_events if event.category in FAULT_CATEGORIES
        )
    frames = sum(report.num_frames for report in reports)
    stalled = sum(
        sum(1 for f in report.frames if f.stalled) for report in reports
    )
    return ResilienceSummary(
        num_sessions=len(reports),
        sessions_attempted=attempted,
        crash_free_rate=len(reports) / attempted if attempted else 0.0,
        total_fault_events=total_faults,
        mttr_s=_mttr(episode_lengths, open_episodes),
        frames_survived_degraded=sum(r.frames_survived_degraded for r in reports),
        frozen_frames=sum(r.frozen_frames for r in reports),
        degraded_renders=sum(r.degraded_renders for r in reports),
        skipped_frames=sum(r.skipped_frames for r in reports),
        rendered_frames=sum(r.rendered_frames for r in reports),
        stall_rate=stalled / frames if frames else 0.0,
        open_episodes=open_episodes,
    )
