"""Scheme-level aggregation of session reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import SessionReport

__all__ = ["SchemeSummary", "aggregate_reports", "compare_schemes"]


@dataclass(frozen=True)
class SchemeSummary:
    """Aggregated evaluation numbers for one scheme."""

    scheme: str
    num_sessions: int
    pssim_geometry_mean: float
    pssim_geometry_std: float
    pssim_color_mean: float
    pssim_color_std: float
    stall_rate: float
    mean_fps: float
    throughput_mbps: float
    utilization: float

    def row(self) -> dict[str, float | int | str]:
        """Flat dict for table rendering."""
        return {
            "scheme": self.scheme,
            "sessions": self.num_sessions,
            "pssim_g": round(self.pssim_geometry_mean, 1),
            "pssim_c": round(self.pssim_color_mean, 1),
            "stalls%": round(100 * self.stall_rate, 1),
            "fps": round(self.mean_fps, 1),
            "tput_mbps": round(self.throughput_mbps, 2),
            "util%": round(100 * self.utilization, 1),
        }


def aggregate_reports(
    reports: list[SessionReport], stalls_as_zero: bool = True
) -> SchemeSummary:
    """Collapse same-scheme session reports into one summary.

    PSSIM aggregation follows the paper's convention: stalled frames
    score zero unless ``stalls_as_zero`` is disabled.
    """
    if not reports:
        raise ValueError("need at least one report")
    schemes = {report.scheme for report in reports}
    if len(schemes) != 1:
        raise ValueError(f"reports span several schemes: {sorted(schemes)}")
    geometry = [report.pssim_geometry(stalls_as_zero)[0] for report in reports]
    color = [report.pssim_color(stalls_as_zero)[0] for report in reports]
    return SchemeSummary(
        scheme=reports[0].scheme,
        num_sessions=len(reports),
        pssim_geometry_mean=float(np.mean(geometry)),
        pssim_geometry_std=float(np.std(geometry)),
        pssim_color_mean=float(np.mean(color)),
        pssim_color_std=float(np.std(color)),
        stall_rate=float(np.mean([report.stall_rate for report in reports])),
        mean_fps=float(np.mean([report.mean_fps for report in reports])),
        throughput_mbps=float(np.mean([report.throughput_mbps for report in reports])),
        utilization=float(np.mean([report.utilization for report in reports])),
    )


def compare_schemes(reports: list[SessionReport]) -> list[SchemeSummary]:
    """Group mixed reports by scheme and aggregate each group.

    Returned summaries are sorted by geometry PSSIM, best first -- the
    ordering the paper's comparisons lead with.
    """
    by_scheme: dict[str, list[SessionReport]] = {}
    for report in reports:
        by_scheme.setdefault(report.scheme, []).append(report)
    summaries = [aggregate_reports(group) for group in by_scheme.values()]
    summaries.sort(key=lambda s: s.pssim_geometry_mean, reverse=True)
    return summaries
