"""LiVo reproduction: bandwidth-adaptive volumetric video conferencing.

A from-scratch Python implementation of *LiVo: Toward Bandwidth-adaptive
Fully-Immersive Volumetric Video Conferencing* (CoNEXT 2025) and every
substrate it depends on.

Top-level layout:

- :mod:`repro.geometry` -- point clouds, cameras, frustums, voxels.
- :mod:`repro.capture` -- synthetic RGB-D camera rig + evaluation videos.
- :mod:`repro.codec` -- rate-adaptive block-transform 2D video codec.
- :mod:`repro.depthcodec` -- LiVo's 16-bit depth encoding + baselines.
- :mod:`repro.tiling` -- multi-camera tiling + frame sequence markers.
- :mod:`repro.transport` -- WebRTC-like transport, GCC, trace-driven link.
- :mod:`repro.prediction` -- Kalman/MLP pose prediction, frustum culling.
- :mod:`repro.compression` -- Draco-like octree codec, Oracle, MeshReduce.
- :mod:`repro.metrics` -- PointSSIM, image metrics, MOS model.
- :mod:`repro.core` -- the LiVo sender/receiver pipeline and schemes.

Quickstart::

    from repro.capture import load_video, default_rig
    from repro.core import LiVoSession, SessionConfig

    spec, scene = load_video("band2")
    session = LiVoSession(SessionConfig())
    report = session.run(scene, num_frames=30)
    print(report.summary())
"""

__version__ = "1.0.0"
