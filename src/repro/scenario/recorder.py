"""Record a scenario run into a versioned, replayable JSONL artifact.

The artifact is a deterministic function of the spec: it embeds the
full :class:`~repro.scenario.spec.ScenarioSpec` (so a replay needs
nothing else), the per-frame event stream (every FrameRecord plus the
sim-clock slice of the obs timeline -- frame status, lifetime, and
transport milliseconds), periodic cumulative state snapshots, the
session's fault/recovery events, a report digest, and a trailing
sha256 checksum over the body.

Only sim-clock quantities are recorded.  Wall-clock stage timings vary
run to run and would make byte-identical replays impossible; they are
deliberately excluded (mirroring how ``SessionReport`` keeps them out
of ``asdict``).

Format: one canonical-JSON object per line, each tagged with ``kind``
(``header`` / ``frame`` / ``snapshot`` / ``event`` / ``report`` /
``checksum``).  ``SCHEMA_VERSION`` gates replayability across format
changes.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.stats import SessionReport
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "SCHEMA_VERSION",
    "artifact_records",
    "canonical_dumps",
    "record_scenario",
    "write_artifact",
]

SCHEMA_VERSION = 1

SNAPSHOT_EVERY = 25


def _json_safe(value):
    """Recursively coerce a value into canonical-JSON-safe form.

    numpy scalars become Python scalars; NaN/inf become None (JSON has
    no spelling for them and ``allow_nan=False`` would raise).
    """
    if isinstance(value, dict):
        return {str(key): _json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(entry) for entry in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if math.isfinite(value) else None
    return value


def canonical_dumps(obj) -> str:
    """One canonical JSON line: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        _json_safe(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _frame_records(report: SessionReport) -> list[dict]:
    timelines = report.frame_timeline()
    records = []
    for frame in report.frames:
        entry = {"kind": "frame", **asdict(frame)}
        row = timelines.get(frame.sequence)
        if row is not None:
            # Sim-clock slice only: status, lifetime, per-stream
            # transport time, and fault instants.  Wall-clock stage and
            # kernel milliseconds are run-varying and excluded.
            entry["timeline"] = {
                "status": row["status"],
                "start_s": row["start_s"],
                "end_s": row["end_s"],
                "transport_ms": row["transport_ms"],
                "events": sorted(row["events"]),
            }
        records.append(entry)
    return records


def _snapshots(report: SessionReport, every: int) -> list[dict]:
    """Cumulative state checkpoints every ``every`` frames."""
    snapshots = []
    rendered = stalled = skipped = frozen = wire_bytes = 0
    for index, frame in enumerate(report.frames):
        rendered += frame.rendered
        stalled += frame.stalled
        skipped += frame.skipped
        frozen += frame.frozen
        wire_bytes += frame.wire_bytes
        last = index == len(report.frames) - 1
        if (index + 1) % every == 0 or last:
            snapshots.append(
                {
                    "kind": "snapshot",
                    "through_sequence": frame.sequence,
                    "rendered": rendered,
                    "stalled": stalled,
                    "skipped": skipped,
                    "frozen": frozen,
                    "wire_bytes": wire_bytes,
                    "degradation_level": frame.degradation_level,
                }
            )
    return snapshots


def _ladder_metrics(report: SessionReport) -> dict:
    registry = report.metrics
    if registry is None:
        return {}
    out = {}
    for name in registry.names():
        if name.startswith("ladder."):
            out[name] = registry.get(name).to_dict()
    return out


def _report_digest(report: SessionReport) -> dict:
    latency_mean, latency_p50, latency_p95 = report.latency_stats()
    geometry_mean, _ = report.pssim_geometry()
    color_mean, _ = report.pssim_color()
    return {
        "kind": "report",
        "scheme": report.scheme,
        "video": report.video,
        "user_trace": report.user_trace,
        "network_trace": report.network_trace,
        "num_frames": report.num_frames,
        "rendered_frames": report.rendered_frames,
        "skipped_frames": report.skipped_frames,
        "frozen_frames": report.frozen_frames,
        "stall_rate": report.stall_rate,
        "mean_fps": report.mean_fps,
        "throughput_mbps": report.throughput_mbps,
        "utilization": report.utilization,
        "latency_mean_s": latency_mean,
        "latency_p50_s": latency_p50,
        "latency_p95_s": latency_p95,
        "pssim_geometry_mean": geometry_mean,
        "pssim_color_mean": color_mean,
        "mttr_s": report.mttr_s,
        "fault_counts": report.fault_counts(),
        "ladder": _ladder_metrics(report),
    }


def artifact_records(
    spec: ScenarioSpec,
    report: SessionReport,
    snapshot_every: int = SNAPSHOT_EVERY,
) -> list[dict]:
    """The artifact's body: every record except the trailing checksum."""
    records: list[dict] = [
        {
            "kind": "header",
            "version": SCHEMA_VERSION,
            "scenario": spec.name,
            "fingerprint": spec.fingerprint(),
            "spec": spec.to_dict(),
        }
    ]
    records.extend(_frame_records(report))
    records.extend(_snapshots(report, snapshot_every))
    for event in report.fault_events:
        records.append({"kind": "event", **asdict(event)})
    records.append(_report_digest(report))
    return records


def write_artifact(path: str | Path, records: list[dict]) -> str:
    """Serialize records + checksum to ``path``; returns the sha256."""
    lines = [canonical_dumps(record) for record in records]
    body = "\n".join(lines) + "\n"
    digest = hashlib.sha256(body.encode()).hexdigest()
    lines.append(canonical_dumps({"kind": "checksum", "sha256": digest}))
    Path(path).write_text("\n".join(lines) + "\n")
    return digest


def record_scenario(spec: ScenarioSpec, path: str | Path) -> SessionReport:
    """Run ``spec`` and write its recording artifact to ``path``."""
    from repro.scenario.runner import run_scenario

    report = run_scenario(spec)
    write_artifact(path, artifact_records(spec, report))
    return report
