"""Scenario engine: deterministic record/replay and the chaos zoo.

- :mod:`repro.scenario.spec` -- declarative scenario specs;
- :mod:`repro.scenario.zoo` -- the named scenario catalogue;
- :mod:`repro.scenario.runner` -- spec -> SessionReport execution;
- :mod:`repro.scenario.recorder` -- versioned JSONL recording artifacts;
- :mod:`repro.scenario.replay` -- re-run + structural diff vs a golden;
- :mod:`repro.scenario.invariants` -- cross-cutting session invariants;
- :mod:`repro.scenario.cli` -- the ``--scenario`` command surface.
"""

from repro.scenario.invariants import check_report
from repro.scenario.recorder import (
    SCHEMA_VERSION,
    artifact_records,
    record_scenario,
    write_artifact,
)
from repro.scenario.replay import (
    ArtifactError,
    DiffReport,
    Divergence,
    diff_records,
    load_artifact,
    replay_artifact,
)
from repro.scenario.runner import run_scenario
from repro.scenario.spec import ChurnEvent, ScenarioSpec, TraceSegment, TraceSpec
from repro.scenario.zoo import SCENARIOS, get_scenario, scenario_names

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIOS",
    "ArtifactError",
    "ChurnEvent",
    "DiffReport",
    "Divergence",
    "ScenarioSpec",
    "TraceSegment",
    "TraceSpec",
    "artifact_records",
    "check_report",
    "diff_records",
    "get_scenario",
    "load_artifact",
    "record_scenario",
    "replay_artifact",
    "run_scenario",
    "scenario_names",
    "write_artifact",
]
