"""Run a :class:`~repro.scenario.spec.ScenarioSpec` to a SessionReport.

Two execution paths:

- ``kind="livo"`` hands the spec straight to
  :class:`repro.core.session.LiVoSession` -- the full interleaved
  replay with fault injection, the watchdog ladder, and the obs
  timeline.
- ``kind="multiway"`` drives :class:`repro.core.multiway.MultiwaySender`
  through the spec's join/leave churn on a simulated clock with a
  simple serialization+propagation delivery model.  In ``sfu`` mode
  each receiver additionally gets its own emulated downlink (the
  spec's ``receiver_links`` pin heterogeneous capacities; unlisted
  peers inherit the main trace) and a frame renders only when the
  *slowest* receiver's forward lands inside the playout budget.  What
  matters for the regression corpus is that every path is
  deterministic in the spec.

Both paths are byte-deterministic: same spec, same report.
"""

from __future__ import annotations

from repro.capture.dataset import load_video
from repro.capture.rig import default_rig
from repro.core.multiway import MultiwaySender
from repro.core.session import LiVoSession
from repro.core.stats import FaultEvent, FrameRecord, SessionReport
from repro.perf.capture import CachedFrameSource
from repro.prediction.pose import user_traces_for_video
from repro.scenario.spec import ScenarioSpec
from repro.transport.traces import constant_trace

__all__ = ["run_scenario"]


def run_scenario(spec: ScenarioSpec) -> SessionReport:
    """Execute one scenario deterministically and return its report."""
    if spec.kind == "multiway":
        return _run_multiway(spec)
    return _run_livo(spec)


def _load_workload(spec: ScenarioSpec):
    _, scene = load_video(spec.video, sample_budget=spec.sample_budget)
    traces = user_traces_for_video(spec.video, spec.frames + 10)
    user = traces[spec.user_index % len(traces)]
    return scene, user


def _run_livo(spec: ScenarioSpec) -> SessionReport:
    scene, user = _load_workload(spec)
    session = LiVoSession(spec.build_config())
    return session.run(
        scene,
        user,
        spec.build_trace(),
        spec.frames,
        video_name=spec.video,
        scheme_name=spec.scheme,
        fault_plan=None if spec.faults.is_empty else spec.faults,
    )


def _run_multiway(spec: ScenarioSpec) -> SessionReport:
    """Churn harness: peers join/leave a MultiwaySender mid-session.

    Delivery model per tick: the (shared or summed) stream serializes
    at the trace's instantaneous capacity plus one propagation delay; a
    frame renders when that lands inside the playout budget.  Faults
    are limited to churn events themselves (recorded as FaultEvents),
    which is plenty to regression-pin add/remove_receiver behavior.
    """
    config = spec.build_config()
    _, scene = load_video(spec.video, sample_budget=spec.sample_budget)
    rig = default_rig(
        num_cameras=spec.num_cameras,
        width=spec.camera_width,
        height=spec.camera_height,
    )
    source = CachedFrameSource(rig, scene) if config.kernel_cache else None
    pose_traces = user_traces_for_video(spec.video, spec.frames + 10)

    bandwidth = spec.build_trace()
    sender_kwargs: dict = {}
    extra_propagation: dict[str, float] = {}
    if spec.multiway_mode == "sfu":
        downlink_traces = {}
        for link in spec.receiver_links:
            downlink_traces[link.peer] = constant_trace(
                link.mbps, duration_s=spec.duration_s + 10.0
            )
            if link.propagation_s is not None:
                extra_propagation[link.peer] = link.propagation_s
        sender_kwargs = dict(
            downlink_traces=downlink_traces,
            default_downlink_trace=bandwidth,
            downlink_config=config.link,
        )

    sender = MultiwaySender(
        rig.cameras,
        config,
        list(spec.initial_peers),
        mode=spec.multiway_mode,
        **sender_kwargs,
    )
    # Peers get pose traces by join order, so a rejoining peer resumes a
    # deterministic trajectory.
    peer_traces: dict[str, object] = {}
    join_counter = 0

    def assign_trace(peer: str) -> None:
        nonlocal join_counter
        if peer not in peer_traces:
            peer_traces[peer] = pose_traces[join_counter % len(pose_traces)]
            join_counter += 1

    for peer in spec.initial_peers:
        assign_trace(peer)

    interval = config.frame_interval_s
    horizon_s = config.pose_feedback_lag_frames * interval
    churn = sorted(spec.churn, key=lambda event: event.time_s)
    churn_index = 0
    events: list[FaultEvent] = []
    records: list[FrameRecord] = []

    for sequence in range(spec.frames):
        now = sequence * interval
        while churn_index < len(churn) and churn[churn_index].time_s <= now:
            event = churn[churn_index]
            churn_index += 1
            if event.action == "join":
                sender.add_receiver(event.peer)
                assign_trace(event.peer)
            else:
                sender.remove_receiver(event.peer)
            events.append(
                FaultEvent(
                    time_s=now,
                    category=f"peer_{event.action}",
                    detail=f"{event.peer} ({len(sender.receiver_names)} active)",
                    sequence=sequence,
                    recovered=event.action == "join",
                )
            )
        active = sender.receiver_names
        if not active:
            records.append(
                FrameRecord(
                    sequence=sequence,
                    capture_time_s=now,
                    rendered=False,
                    stalled=False,
                    empty=True,
                )
            )
            continue
        for peer in active:
            sender.observe_pose(peer, peer_traces[peer].pose_at_frame(sequence), now)
        frame = source.capture(sequence) if source is not None else rig.capture(
            scene, sequence
        )
        capacity_bps = bandwidth.capacity_bps_at(now)
        target = 0.5 * capacity_bps
        result = sender.process(frame, target, horizon_s)
        wire_bytes = result.total_bytes
        record = FrameRecord(
            sequence=sequence,
            capture_time_s=now,
            rendered=False,
            stalled=True,
            wire_bytes=wire_bytes,
            total_points=frame.total_points(),
        )
        if wire_bytes > 0 and capacity_bps > 0.0:
            delivery = (
                now
                + wire_bytes * 8.0 / capacity_bps
                + config.link.propagation_delay_s
            )
            if result.downlinks:
                # SFU: the conference renders when the slowest receiver's
                # forwarded burst lands (per-link emulated delivery plus
                # any extra per-receiver propagation from the spec).
                forwarded = [
                    decision.delivery_time_s + extra_propagation.get(peer, 0.0)
                    for peer, decision in result.downlinks.items()
                    if decision.delivery_time_s is not None
                ]
                if forwarded:
                    delivery = max(delivery, max(forwarded))
            record.delivery_time_s = delivery
            if delivery <= now + config.playout_delay_s:
                record.rendered = True
                record.stalled = False
        elif wire_bytes == 0:
            record.stalled = False
            record.empty = True
        records.append(record)

    sender.close()

    return SessionReport(
        scheme=f"Multiway-{spec.multiway_mode}",
        video=spec.video,
        user_trace=",".join(spec.initial_peers),
        network_trace=bandwidth.name,
        fps_target=config.fps,
        duration_s=spec.frames * interval,
        frames=records,
        mean_capacity_mbps=bandwidth.stats().mean,
        trace_scale=1.0,
        fault_events=events,
    )
