"""Scenario CLI: list, run, record, and replay chaos scenarios.

Routed from ``python -m repro`` when the first argument is a scenario
flag (or the ``scenario`` word)::

    python -m repro --list-scenarios
    python -m repro --scenario handoff-cellular-wifi --record r.jsonl
    python -m repro --replay r.jsonl
    python -m repro --replay-corpus tests/goldens
    python -m repro --run-zoo

Exit codes: 0 success, 1 replay divergence, 2 usage/artifact error,
3 invariant violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["build_parser", "main"]

EXIT_OK = 0
EXIT_DIVERGED = 1
EXIT_USAGE = 2
EXIT_INVARIANT = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scenario",
        description="deterministic chaos scenarios: record, replay, regress",
    )
    parser.add_argument(
        "--scenario", metavar="NAME", default=None,
        help="zoo scenario to run (see --list-scenarios)",
    )
    parser.add_argument(
        "--list-scenarios", action="store_true",
        help="list the scenario zoo and exit",
    )
    parser.add_argument(
        "--record", metavar="PATH", default=None,
        help="with --scenario: write the run's recording artifact here",
    )
    parser.add_argument(
        "--replay", metavar="PATH", default=None,
        help="replay a recording and diff against it",
    )
    parser.add_argument(
        "--replay-corpus", metavar="DIR", default=None,
        help="replay every *.jsonl recording in a directory (CI regression)",
    )
    parser.add_argument(
        "--run-zoo", action="store_true",
        help="run every zoo scenario through the invariant checker",
    )
    parser.add_argument(
        "--frames", type=int, default=None,
        help="with --scenario: override the spec's frame count",
    )
    parser.add_argument(
        "--no-invariants", action="store_true",
        help="skip the invariant checker (diff-only replay)",
    )
    return parser


def _check_invariants(spec, report, enabled: bool) -> int:
    if not enabled:
        return EXIT_OK
    from repro.scenario.invariants import check_report

    problems = check_report(report, spec)
    if problems:
        print(f"invariant violations ({spec.name}):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return EXIT_INVARIANT
    return EXIT_OK


def _cmd_list() -> int:
    from repro.scenario.zoo import SCENARIOS

    width = max(len(name) for name in SCENARIOS)
    for spec in SCENARIOS.values():
        tags = f" [{','.join(spec.tags)}]" if spec.tags else ""
        print(f"{spec.name:<{width}s}  {spec.frames:>4d}f  {spec.description}{tags}")
    return EXIT_OK


def _cmd_scenario(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.scenario.recorder import artifact_records, write_artifact
    from repro.scenario.runner import run_scenario
    from repro.scenario.zoo import get_scenario

    try:
        spec = get_scenario(args.scenario)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    if args.frames is not None:
        spec = replace(spec, frames=args.frames)
    report = run_scenario(spec)
    print(report.summary())
    if args.record is not None:
        digest = write_artifact(args.record, artifact_records(spec, report))
        print(f"recorded {spec.name} -> {args.record} (sha256 {digest[:12]})")
    return _check_invariants(spec, report, not args.no_invariants)


def _replay_one(path: Path, check_invariants: bool) -> int:
    from repro.scenario.replay import ArtifactError, replay_artifact
    from repro.scenario.spec import ScenarioSpec

    try:
        diff, report = replay_artifact(path)
    except ArtifactError as error:
        print(f"error: {path}: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(diff.format())
    if not diff.matches:
        return EXIT_DIVERGED
    if check_invariants:
        from repro.scenario.replay import load_artifact

        records, _ = load_artifact(path)
        spec = ScenarioSpec.from_dict(records[0]["spec"])
        return _check_invariants(spec, report, True)
    return EXIT_OK


def _cmd_replay_corpus(directory: str, check_invariants: bool) -> int:
    corpus = sorted(Path(directory).glob("*.jsonl"))
    if not corpus:
        print(f"error: no *.jsonl recordings in {directory}", file=sys.stderr)
        return EXIT_USAGE
    worst = EXIT_OK
    for path in corpus:
        code = _replay_one(path, check_invariants)
        worst = max(worst, code)
    print(f"corpus: {len(corpus)} recording(s), exit {worst}")
    return worst


def _cmd_run_zoo(check_invariants: bool) -> int:
    from repro.scenario.runner import run_scenario
    from repro.scenario.zoo import SCENARIOS

    worst = EXIT_OK
    for spec in SCENARIOS.values():
        report = run_scenario(spec)
        print(f"{spec.name}: {report.summary()}")
        worst = max(worst, _check_invariants(spec, report, check_invariants))
    return worst


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    actions = sum(
        1
        for active in (
            args.list_scenarios,
            args.scenario is not None,
            args.replay is not None,
            args.replay_corpus is not None,
            args.run_zoo,
        )
        if active
    )
    if actions != 1:
        print(
            "error: pick exactly one of --scenario / --list-scenarios / "
            "--replay / --replay-corpus / --run-zoo",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.list_scenarios:
        return _cmd_list()
    if args.scenario is not None:
        return _cmd_scenario(args)
    if args.replay is not None:
        return _replay_one(Path(args.replay), not args.no_invariants)
    if args.replay_corpus is not None:
        return _cmd_replay_corpus(args.replay_corpus, not args.no_invariants)
    return _cmd_run_zoo(not args.no_invariants)
