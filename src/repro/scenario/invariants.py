"""Cross-cutting session invariants, checked on every scenario replay.

These are properties that must hold for *any* run, healthy or chaotic
-- the class of bug a golden diff can miss because both the recording
and the replay share it.  Each violated invariant yields one
human-readable string; an empty list means the report is coherent.

The checks:

- **monotone frames**: frame sequences strictly increase and capture
  times never go backwards;
- **flag consistency**: a frame is rendered XOR stalled XOR skipped XOR
  empty in the combinations the session can actually emit (e.g. a
  skipped tick carries no wire bytes and never renders);
- **no zero-latency losses**: a delivered frame's delivery time is at
  or after its capture time, and a session where nothing was delivered
  reports NaN latency, never 0 (total loss must not read as a perfect
  network);
- **MTTR semantics**: finite and non-negative when at least one
  degradation episode completed, NaN when every episode stayed open,
  0 when the ladder never engaged;
- **ladder hysteresis**: walking the degrade/recover events moves the
  ladder one rung at a time and never outside [0, max_level];
- **no leaked spans**: when a trace rode along, every span was closed
  by the session's final drain.
"""

from __future__ import annotations

import math

from repro.core.stats import SessionReport
from repro.faults.degradation import LEVEL_NORMAL, _LEVEL_NAMES
from repro.scenario.spec import ScenarioSpec

__all__ = ["check_report"]

_NAME_TO_LEVEL = {name: level for level, name in _LEVEL_NAMES.items()}


def _ladder_walk_violations(report: SessionReport, max_level: int) -> list[str]:
    """Hysteresis check via the degrade/recover event stream.

    Per-frame level diffs cannot be used: several render deadlines can
    resolve between two capture ticks, legally moving the ladder more
    than one rung between consecutive FrameRecords.  The event stream
    sees every individual transition.
    """
    problems = []
    level = LEVEL_NORMAL
    for event in report.fault_events:
        if event.category not in ("degrade_step", "recover_step"):
            continue
        name = event.detail.rsplit("-> ", 1)[-1].strip()
        new_level = _NAME_TO_LEVEL.get(name)
        if new_level is None:
            problems.append(f"unparseable ladder event detail {event.detail!r}")
            continue
        step = new_level - level
        expected = -1 if event.category == "recover_step" else 1
        if step != expected:
            problems.append(
                f"ladder {event.category} at t={event.time_s:.3f}s jumped "
                f"{level} -> {new_level} (must move exactly {expected:+d})"
            )
        if not LEVEL_NORMAL <= new_level <= max_level:
            problems.append(
                f"ladder left [{LEVEL_NORMAL}, {max_level}] at t={event.time_s:.3f}s"
            )
        level = new_level
    return problems


def check_report(
    report: SessionReport, spec: ScenarioSpec | None = None
) -> list[str]:
    """Every violated invariant, as human-readable strings."""
    problems: list[str] = []

    last_sequence = None
    last_capture = None
    delivered = 0
    for frame in report.frames:
        tag = f"frame {frame.sequence}"
        if last_sequence is not None and frame.sequence <= last_sequence:
            problems.append(
                f"{tag}: sequence not strictly increasing (prev {last_sequence})"
            )
        if last_capture is not None and frame.capture_time_s < last_capture:
            problems.append(f"{tag}: capture time went backwards")
        last_sequence = frame.sequence
        last_capture = frame.capture_time_s

        if frame.wire_bytes < 0:
            problems.append(f"{tag}: negative wire bytes")
        if frame.rendered and (frame.stalled or frame.skipped):
            problems.append(f"{tag}: rendered frame marked stalled/skipped")
        if frame.skipped and frame.wire_bytes != 0:
            problems.append(f"{tag}: skipped tick carries wire bytes")
        if frame.empty and frame.rendered:
            problems.append(f"{tag}: empty capture marked rendered")
        if frame.delivery_time_s is not None:
            delivered += 1
            if frame.delivery_time_s < frame.capture_time_s:
                problems.append(f"{tag}: delivered before captured (time travel)")
        elif frame.rendered:
            problems.append(f"{tag}: rendered without a delivery time")

    latency_mean, _, _ = report.latency_stats()
    if delivered == 0 and not math.isnan(latency_mean):
        problems.append(
            "nothing was delivered but latency is "
            f"{latency_mean!r} (total loss must report NaN, not a number)"
        )
    if delivered > 0 and not (math.isfinite(latency_mean) and latency_mean >= 0.0):
        problems.append(f"delivered frames but latency mean is {latency_mean!r}")

    episodes = report.degradation_episodes()
    completed = [end - start for start, end in episodes if end is not None]
    mttr = report.mttr_s
    if completed:
        if not (math.isfinite(mttr) and mttr >= 0.0):
            problems.append(
                f"{len(completed)} completed degradation episode(s) but "
                f"mttr_s={mttr!r} (must be finite and non-negative)"
            )
    elif episodes:
        if not math.isnan(mttr):
            problems.append(
                f"all degradation episodes still open but mttr_s={mttr!r} "
                "(no recovery happened; must be NaN)"
            )
    elif mttr != 0.0:
        problems.append(f"never degraded but mttr_s={mttr!r} (must be 0)")

    max_level = 3
    if spec is not None:
        max_level = spec.build_config().resilience.max_level
    problems.extend(_ladder_walk_violations(report, max_level))
    for frame in report.frames:
        if not LEVEL_NORMAL <= frame.degradation_level <= max_level:
            problems.append(
                f"frame {frame.sequence}: degradation level "
                f"{frame.degradation_level} outside [{LEVEL_NORMAL}, {max_level}]"
            )

    if report.trace is not None:
        leaked = report.trace.open_spans()
        if leaked:
            names = ", ".join(span.name for span in leaked[:5])
            problems.append(f"{len(leaked)} span(s) left open: {names}")

    return problems
