"""Deterministic replay: re-run a recorded scenario and diff.

``replay_artifact`` loads a recording, rebuilds the spec it embeds,
re-runs the scenario from scratch, and structurally diffs the fresh
records against the golden ones.  Because every run is a deterministic
function of the spec, any divergence is a real behavior change --
the :class:`DiffReport` names the first divergent frame and field so a
regression bisects itself to a stage.

A corrupted artifact (checksum mismatch) is still parsed and diffed
when possible: the checksum divergence is reported first, followed by
whatever record-level differences the corruption produced.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.scenario.recorder import SCHEMA_VERSION, artifact_records, canonical_dumps
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "ArtifactError",
    "Divergence",
    "DiffReport",
    "load_artifact",
    "diff_records",
    "replay_artifact",
]


class ArtifactError(ValueError):
    """The artifact is structurally unusable (not merely divergent)."""


@dataclass(frozen=True)
class Divergence:
    """One point where replay disagrees with the recording."""

    kind: str  # record kind: frame / snapshot / event / report / checksum / header
    sequence: int | None  # frame sequence when applicable
    field: str
    expected: object
    actual: object

    def describe(self) -> str:
        where = f"{self.kind}"
        if self.sequence is not None:
            where += f"[seq={self.sequence}]"
        return f"{where}.{self.field}: recorded={self.expected!r} replayed={self.actual!r}"


@dataclass
class DiffReport:
    """Structured outcome of a replay comparison."""

    scenario: str
    matches: bool
    divergences: list[Divergence] = field(default_factory=list)
    compared_frames: int = 0

    @property
    def first_divergent_frame(self) -> int | None:
        """The earliest frame sequence that diverged, if any did."""
        frames = [d.sequence for d in self.divergences if d.sequence is not None]
        return min(frames) if frames else None

    def format(self) -> str:
        if self.matches:
            return (
                f"replay OK: {self.scenario} "
                f"({self.compared_frames} frames byte-identical)"
            )
        lines = [
            f"replay DIVERGED: {self.scenario} "
            f"({len(self.divergences)} divergence(s))"
        ]
        first = self.first_divergent_frame
        if first is not None:
            lines.append(f"first divergent frame: {first}")
        for divergence in self.divergences[:20]:
            lines.append(f"  {divergence.describe()}")
        if len(self.divergences) > 20:
            lines.append(f"  ... {len(self.divergences) - 20} more")
        return "\n".join(lines)


def load_artifact(path: str | Path) -> tuple[list[dict], bool]:
    """Parse an artifact into (body records, checksum_ok).

    Raises :class:`ArtifactError` when the file cannot serve as a
    replay golden at all: unparseable JSON, no header, or a schema
    version this code does not speak.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise ArtifactError(f"cannot read artifact: {error}") from error
    records = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ArtifactError(f"line {number} is not valid JSON: {error}") from error
    if not records:
        raise ArtifactError("artifact is empty")
    checksum_ok = False
    if records[-1].get("kind") == "checksum":
        trailer = records.pop()
        body = "\n".join(canonical_dumps(record) for record in records) + "\n"
        checksum_ok = (
            hashlib.sha256(body.encode()).hexdigest() == trailer.get("sha256")
        )
    header = records[0]
    if header.get("kind") != "header":
        raise ArtifactError("artifact does not start with a header record")
    if header.get("version") != SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact schema version {header.get('version')!r} "
            f"(this build speaks {SCHEMA_VERSION})"
        )
    return records, checksum_ok


def _by_kind(records: list[dict]) -> dict[str, list[dict]]:
    out: dict[str, list[dict]] = {}
    for record in records:
        out.setdefault(record.get("kind", "?"), []).append(record)
    return out


def _diff_dict(
    kind: str,
    sequence: int | None,
    golden: dict,
    fresh: dict,
    out: list[Divergence],
    prefix: str = "",
) -> None:
    for key in sorted(set(golden) | set(fresh)):
        if key == "kind":
            continue
        expected = golden.get(key, "<absent>")
        actual = fresh.get(key, "<absent>")
        name = f"{prefix}{key}"
        if isinstance(expected, dict) and isinstance(actual, dict):
            _diff_dict(kind, sequence, expected, actual, out, prefix=f"{name}.")
        elif expected != actual:
            out.append(Divergence(kind, sequence, name, expected, actual))


def diff_records(golden: list[dict], fresh: list[dict], scenario: str) -> DiffReport:
    """Structurally compare two artifact bodies, frame-first."""
    divergences: list[Divergence] = []
    golden_kinds = _by_kind(golden)
    fresh_kinds = _by_kind(fresh)

    golden_frames = {r["sequence"]: r for r in golden_kinds.get("frame", [])}
    fresh_frames = {r["sequence"]: r for r in fresh_kinds.get("frame", [])}
    for sequence in sorted(set(golden_frames) | set(fresh_frames)):
        in_golden = golden_frames.get(sequence)
        in_fresh = fresh_frames.get(sequence)
        if in_golden is None or in_fresh is None:
            divergences.append(
                Divergence(
                    "frame",
                    sequence,
                    "presence",
                    "recorded" if in_golden else "<absent>",
                    "replayed" if in_fresh else "<absent>",
                )
            )
            continue
        _diff_dict("frame", sequence, in_golden, in_fresh, divergences)

    for kind in ("header", "report"):
        golden_one = golden_kinds.get(kind, [{}])[0]
        fresh_one = fresh_kinds.get(kind, [{}])[0]
        _diff_dict(kind, None, golden_one, fresh_one, divergences)

    for kind in ("snapshot", "event"):
        golden_list = golden_kinds.get(kind, [])
        fresh_list = fresh_kinds.get(kind, [])
        if len(golden_list) != len(fresh_list):
            divergences.append(
                Divergence(kind, None, "count", len(golden_list), len(fresh_list))
            )
        for index, (g, f) in enumerate(zip(golden_list, fresh_list)):
            sequence = g.get("through_sequence", g.get("sequence"))
            _diff_dict(kind, sequence, g, f, divergences)

    frame_order = {d.sequence: i for i, d in enumerate(divergences)}
    divergences.sort(
        key=lambda d: (
            d.sequence is None,
            d.sequence if d.sequence is not None else 0,
            frame_order.get(d.sequence, 0),
        )
    )
    return DiffReport(
        scenario=scenario,
        matches=not divergences,
        divergences=divergences,
        compared_frames=len(golden_frames),
    )


def replay_artifact(path: str | Path):
    """Re-run a recording and diff it against itself.

    Returns ``(diff, report)`` where ``diff`` is the
    :class:`DiffReport` and ``report`` the fresh
    :class:`~repro.core.stats.SessionReport` (for invariant checks).
    """
    from repro.scenario.runner import run_scenario

    golden, checksum_ok = load_artifact(path)
    spec = ScenarioSpec.from_dict(golden[0]["spec"])
    report = run_scenario(spec)
    fresh = artifact_records(spec, report)
    # Normalize the fresh records through the same JSON round-trip the
    # golden ones took, so float/tuple representations compare equal.
    fresh = [json.loads(canonical_dumps(record)) for record in fresh]
    golden = [json.loads(canonical_dumps(record)) for record in golden]
    diff = diff_records(golden, fresh, scenario=spec.name)
    if not checksum_ok:
        diff.matches = False
        diff.divergences.insert(
            0,
            Divergence(
                "checksum",
                None,
                "sha256",
                "recorded trailer",
                "body does not match (artifact edited or truncated)",
            ),
        )
    return diff, report
