"""Declarative scenario specs: everything one adverse run needs.

A :class:`ScenarioSpec` is the complete, serializable description of a
chaos run: workload (video, scheme, camera rig size, frame count),
network (a :class:`TraceSpec` built from piecewise segments or one of
the paper's named traces), faults (a :class:`repro.faults.plan.
FaultPlan`), mobility (which user pose trace drives the receiver), and
-- for multi-party scenarios -- join/leave churn over
:class:`repro.core.multiway.MultiwaySender`.

Specs are frozen dataclasses with a dict loader
(:meth:`ScenarioSpec.from_dict`), so a recording artifact can embed the
exact spec it was produced from and a replay needs nothing but the
artifact.  :meth:`ScenarioSpec.fingerprint` hashes the canonical JSON
form; two specs with the same fingerprint replay identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SchemeFlags, SessionConfig
from repro.faults.plan import FaultPlan
from repro.transport.link import LinkConfig
from repro.transport.traces import BandwidthTrace, trace_1, trace_2

__all__ = [
    "TraceSegment",
    "TraceSpec",
    "ChurnEvent",
    "ReceiverLink",
    "ScenarioSpec",
    "LIVO_SCHEMES",
]

LIVO_SCHEMES = ("LiVo", "LiVo-NoCull", "LiVo-NoAdapt")


@dataclass(frozen=True)
class TraceSegment:
    """One piece of a piecewise bandwidth schedule.

    Capacity holds at ``mbps`` for ``duration_s`` seconds, or ramps
    linearly to ``mbps_end`` over the segment when given (a handoff
    sweep or a fade).
    """

    duration_s: float
    mbps: float
    mbps_end: float | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("segment duration must be positive")
        if self.mbps < 0:
            raise ValueError("segment capacity must be non-negative")
        if self.mbps_end is not None and self.mbps_end < 0:
            raise ValueError("segment end capacity must be non-negative")

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "mbps": self.mbps,
            "mbps_end": self.mbps_end,
        }


@dataclass(frozen=True)
class TraceSpec:
    """Declarative bandwidth trace: named (Table 4) or piecewise.

    ``named`` selects ``trace-1``/``trace-2``; otherwise ``segments``
    define the schedule, optionally roughened by seeded multiplicative
    log-normal jitter (``jitter_sigma``).  Building is deterministic in
    the spec, which is what makes recorded scenarios replayable.
    """

    segments: tuple[TraceSegment, ...] = ()
    named: str | None = None
    interval_s: float = 0.1
    jitter_sigma: float = 0.0
    seed: int = 0
    label: str = "scenario"

    def __post_init__(self) -> None:
        object.__setattr__(self, "segments", tuple(self.segments))
        if self.named is not None and self.named not in ("trace-1", "trace-2"):
            raise ValueError("named trace must be 'trace-1' or 'trace-2'")
        if self.named is None and not self.segments:
            raise ValueError("trace spec needs segments or a named trace")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")

    def build(self, duration_s: float) -> BandwidthTrace:
        """Materialize the trace (``duration_s`` sizes named traces).

        Piecewise traces use their own total segment length and loop
        past it, like every :class:`BandwidthTrace`.
        """
        if self.named == "trace-1":
            return trace_1(duration_s=max(duration_s, 10.0), seed=self.seed or 1)
        if self.named == "trace-2":
            return trace_2(duration_s=max(duration_s, 10.0), seed=self.seed or 2)
        pieces = []
        for segment in self.segments:
            count = max(1, int(round(segment.duration_s / self.interval_s)))
            end = segment.mbps if segment.mbps_end is None else segment.mbps_end
            pieces.append(
                segment.mbps
                + (end - segment.mbps) * np.arange(count, dtype=np.float64) / count
            )
        capacities = np.concatenate(pieces)
        if self.jitter_sigma > 0.0:
            rng = np.random.default_rng(self.seed)
            capacities = capacities * np.exp(
                rng.normal(0.0, self.jitter_sigma, len(capacities))
            )
        return BandwidthTrace(capacities, self.interval_s, name=self.label)

    def to_dict(self) -> dict:
        return {
            "segments": [segment.to_dict() for segment in self.segments],
            "named": self.named,
            "interval_s": self.interval_s,
            "jitter_sigma": self.jitter_sigma,
            "seed": self.seed,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        return cls(
            segments=tuple(
                TraceSegment(**entry) for entry in data.get("segments", ())
            ),
            named=data.get("named"),
            interval_s=data.get("interval_s", 0.1),
            jitter_sigma=data.get("jitter_sigma", 0.0),
            seed=data.get("seed", 0),
            label=data.get("label", "scenario"),
        )


@dataclass(frozen=True)
class ChurnEvent:
    """One peer joining or leaving a multi-party conference."""

    time_s: float
    action: str  # "join" | "leave"
    peer: str

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("churn time must be non-negative")
        if self.action not in ("join", "leave"):
            raise ValueError(f"unknown churn action {self.action!r}")
        if not self.peer:
            raise ValueError("churn event needs a peer name")

    def to_dict(self) -> dict:
        return {"time_s": self.time_s, "action": self.action, "peer": self.peer}


@dataclass(frozen=True)
class ReceiverLink:
    """A heterogeneous per-receiver downlink for SFU scenarios.

    Receivers without an entry inherit the scenario's main trace; an
    entry pins that peer's downlink to a constant ``mbps`` capacity
    (and optionally its own propagation delay) -- the "one receiver on
    cellular, one on ethernet" shape an SFU exists to serve.
    """

    peer: str
    mbps: float
    propagation_s: float | None = None

    def __post_init__(self) -> None:
        if not self.peer:
            raise ValueError("receiver link needs a peer name")
        if self.mbps <= 0:
            raise ValueError("receiver link capacity must be positive")
        if self.propagation_s is not None and self.propagation_s < 0:
            raise ValueError("receiver link propagation must be non-negative")

    def to_dict(self) -> dict:
        return {"peer": self.peer, "mbps": self.mbps, "propagation_s": self.propagation_s}


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, named, replayable chaos scenario."""

    name: str
    description: str
    trace: TraceSpec
    kind: str = "livo"  # "livo" | "multiway"
    video: str = "office1"
    scheme: str = "LiVo"
    frames: int = 60
    seed: int = 0
    user_index: int = 0
    num_cameras: int = 4
    camera_width: int = 32
    camera_height: int = 24
    sample_budget: int = 6000
    gop_size: int = 10
    quality_every: int = 6
    faults: FaultPlan = field(default_factory=FaultPlan)
    link_propagation_s: float | None = None
    link_loss_rate: float = 0.005
    initial_peers: tuple[str, ...] = ()
    churn: tuple[ChurnEvent, ...] = ()
    multiway_mode: str = "shared"
    receiver_links: tuple[ReceiverLink, ...] = ()
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "initial_peers", tuple(self.initial_peers))
        object.__setattr__(self, "churn", tuple(self.churn))
        object.__setattr__(self, "receiver_links", tuple(self.receiver_links))
        object.__setattr__(self, "tags", tuple(self.tags))
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.kind not in ("livo", "multiway"):
            raise ValueError("kind must be 'livo' or 'multiway'")
        if self.kind == "livo" and self.scheme not in LIVO_SCHEMES:
            raise ValueError(f"livo scenarios support schemes {LIVO_SCHEMES}")
        if self.frames <= 0:
            raise ValueError("frames must be positive")
        if self.user_index < 0:
            raise ValueError("user_index must be non-negative")
        if self.multiway_mode not in ("shared", "unicast", "sfu"):
            raise ValueError("multiway_mode must be 'shared', 'unicast', or 'sfu'")
        if self.receiver_links:
            if self.kind != "multiway" or self.multiway_mode != "sfu":
                raise ValueError(
                    "receiver_links only apply to multiway scenarios in sfu mode"
                )
            peers = [link.peer for link in self.receiver_links]
            if len(set(peers)) != len(peers):
                raise ValueError("duplicate peer in receiver_links")
        if not 0.0 <= self.link_loss_rate < 1.0:
            raise ValueError("link_loss_rate must be in [0, 1)")
        if self.kind == "multiway":
            if not self.initial_peers:
                raise ValueError("multiway scenarios need initial_peers")
            times = [event.time_s for event in self.churn]
            if times != sorted(times):
                raise ValueError("churn events must be time-ordered")
        elif self.churn or self.initial_peers:
            raise ValueError("churn/initial_peers only apply to multiway scenarios")

    @property
    def duration_s(self) -> float:
        """Session length at the 30 fps capture cadence."""
        return self.frames / 30.0

    # Multiplicative capacity dither keyed to ``seed``: large enough to
    # move GCC's initial rate and per-frame budgets (so any seed change
    # diverges the run at frame 0), small enough (±~0.5%) to leave the
    # scenario's character untouched.
    _SEED_DITHER_SIGMA = 0.005

    def build_trace(self) -> BandwidthTrace:
        """The scenario's bandwidth trace, dithered by the run seed.

        Every byte of a session depends on link capacity (GCC targets,
        encode budgets, delivery times), so tying a seeded dither to
        the trace guarantees that mutating a recorded seed produces a
        frame-level divergence -- not just a fingerprint mismatch.
        """
        trace = self.trace.build(self.duration_s + 10.0)
        rng = np.random.default_rng(self.seed)
        dither = np.exp(
            rng.normal(0.0, self._SEED_DITHER_SIGMA, len(trace.capacities_mbps))
        )
        return BandwidthTrace(
            trace.capacities_mbps * dither, trace.interval_s, name=trace.name
        )

    def build_config(self) -> SessionConfig:
        """The session config this scenario runs under.

        ``trace_scale=1.0`` keeps the spec's capacities absolute (they
        are sized to this rig), and ``trace=True`` records the obs
        timeline so replays can diff frame fates and the invariant
        checker can assert no span leaks.  ``spec.seed`` seeds the
        link's i.i.d. loss RNG, so every scenario's outcome depends on
        it -- mutating a recorded seed is guaranteed to diverge.
        """
        link = LinkConfig(
            propagation_delay_s=(
                self.link_propagation_s
                if self.link_propagation_s is not None
                else LinkConfig.propagation_delay_s
            ),
            loss_rate=self.link_loss_rate,
            seed=self.seed,
        )
        return SessionConfig(
            num_cameras=self.num_cameras,
            camera_width=self.camera_width,
            camera_height=self.camera_height,
            scene_sample_budget=self.sample_budget,
            gop_size=self.gop_size,
            quality_every=self.quality_every,
            trace_scale=1.0,
            link=link,
            scheme=SchemeFlags(
                culling=self.scheme == "LiVo",
                adaptation=self.scheme != "LiVo-NoAdapt",
            ),
            trace=self.kind == "livo",
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "video": self.video,
            "scheme": self.scheme,
            "frames": self.frames,
            "seed": self.seed,
            "user_index": self.user_index,
            "num_cameras": self.num_cameras,
            "camera_width": self.camera_width,
            "camera_height": self.camera_height,
            "sample_budget": self.sample_budget,
            "gop_size": self.gop_size,
            "quality_every": self.quality_every,
            "trace": self.trace.to_dict(),
            "faults": self.faults.to_dict(),
            "link_propagation_s": self.link_propagation_s,
            "link_loss_rate": self.link_loss_rate,
            "initial_peers": list(self.initial_peers),
            "churn": [event.to_dict() for event in self.churn],
            "multiway_mode": self.multiway_mode,
            "tags": list(self.tags),
        } | (
            # Emitted only when set, so pre-SFU recordings keep their
            # canonical dict -- and therefore their fingerprint -- bit
            # for bit (the golden-corpus compatibility contract).
            {"receiver_links": [link.to_dict() for link in self.receiver_links]}
            if self.receiver_links
            else {}
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """The loader: rebuild (and re-validate) a serialized spec."""
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            kind=data.get("kind", "livo"),
            video=data.get("video", "office1"),
            scheme=data.get("scheme", "LiVo"),
            frames=data.get("frames", 60),
            seed=data.get("seed", 0),
            user_index=data.get("user_index", 0),
            num_cameras=data.get("num_cameras", 4),
            camera_width=data.get("camera_width", 32),
            camera_height=data.get("camera_height", 24),
            sample_budget=data.get("sample_budget", 6000),
            gop_size=data.get("gop_size", 10),
            quality_every=data.get("quality_every", 6),
            trace=TraceSpec.from_dict(data["trace"]),
            faults=FaultPlan.from_dict(data.get("faults", {})),
            link_propagation_s=data.get("link_propagation_s"),
            link_loss_rate=data.get("link_loss_rate", 0.005),
            initial_peers=tuple(data.get("initial_peers", ())),
            churn=tuple(ChurnEvent(**entry) for entry in data.get("churn", ())),
            multiway_mode=data.get("multiway_mode", "shared"),
            receiver_links=tuple(
                ReceiverLink(**entry) for entry in data.get("receiver_links", ())
            ),
            tags=tuple(data.get("tags", ())),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the spec (12 hex chars)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]
