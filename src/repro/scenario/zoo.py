"""The scenario zoo: named chaos scenarios well beyond the paper's traces.

Each entry is a declarative :class:`~repro.scenario.spec.ScenarioSpec`
combining a bandwidth schedule, a fault plan, a mobility profile, and a
scheme.  Capacities are absolute (``trace_scale=1.0``) and sized to the
small 4-camera 32x24 scenario rig, whose raw rate is ~3.7 Mbps at
30 fps -- so "healthy" is ~2.5-3.5 Mbps and "crunch" is ~0.1 Mbps
(below the encoder floor, the regime that forces the degradation
ladder down).

The zoo is the standing regression corpus: every scenario is recorded
into ``tests/goldens/`` and replayed in CI, so a behavior change in any
layer -- capture, codec, transport, GCC, the watchdog -- shows up as a
golden diff naming the first divergent frame.
"""

from __future__ import annotations

from repro.faults.plan import (
    BurstLossWindow,
    CameraFault,
    EncoderFault,
    FaultPlan,
    FrameCorruption,
    LinkOutage,
)
from repro.scenario.spec import (
    ChurnEvent,
    ReceiverLink,
    ScenarioSpec,
    TraceSegment,
    TraceSpec,
)

__all__ = ["SCENARIOS", "get_scenario", "scenario_names"]


def _flat(mbps: float, duration_s: float = 4.0, **kwargs) -> TraceSpec:
    return TraceSpec(segments=(TraceSegment(duration_s, mbps),), **kwargs)


_ZOO: tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="clean-baseline",
        description="steady 3 Mbps link, no faults: the golden sanity run",
        trace=_flat(3.0, label="steady-3mbps"),
        frames=60,
        seed=101,
        tags=("baseline",),
    ),
    ScenarioSpec(
        name="handoff-cellular-wifi",
        description=(
            "cellular 1.2 Mbps, 0.4 s handoff break with burst loss, then "
            "3.5 Mbps Wi-Fi"
        ),
        trace=TraceSpec(
            segments=(
                TraceSegment(1.2, 1.2),
                TraceSegment(0.4, 1.2, 0.15),
                TraceSegment(2.0, 3.5),
            ),
            label="cellular-to-wifi",
        ),
        frames=90,
        seed=102,
        user_index=1,
        faults=FaultPlan(
            seed=21,
            burst_loss=(
                BurstLossWindow(1.2, 1.7, p_enter=0.15, p_exit=0.25, loss_in_bad=0.9),
            ),
        ),
        tags=("handoff", "mobility"),
    ),
    ScenarioSpec(
        name="satellite-outage",
        description=(
            "120 ms one-way propagation with two hard link outages "
            "(LEO handover shadowing)"
        ),
        trace=_flat(2.5, label="satellite-2.5mbps"),
        frames=75,
        seed=103,
        link_propagation_s=0.12,
        faults=FaultPlan(
            seed=22,
            link_outages=(LinkOutage(0.8, 1.4), LinkOutage(1.9, 2.2)),
        ),
        tags=("outage", "satellite"),
    ),
    ScenarioSpec(
        name="burst-loss-storm",
        description="three harsh Gilbert-Elliott burst windows back to back",
        trace=_flat(2.8, label="steady-2.8mbps"),
        frames=75,
        seed=104,
        user_index=2,
        faults=FaultPlan(
            seed=23,
            burst_loss=(
                BurstLossWindow(0.3, 0.7, p_enter=0.2, p_exit=0.2, loss_in_bad=0.9),
                BurstLossWindow(1.0, 1.4, p_enter=0.2, p_exit=0.2, loss_in_bad=0.9),
                BurstLossWindow(1.7, 2.1, p_enter=0.2, p_exit=0.2, loss_in_bad=0.9),
            ),
        ),
        tags=("loss",),
    ),
    ScenarioSpec(
        name="correlated-fault-congestion",
        description=(
            "ReVo-style cross-layer script: capacity collapse, burst loss, "
            "camera dropout, encode failure, and a corrupt pair co-timed"
        ),
        trace=TraceSpec(
            segments=(
                TraceSegment(1.0, 2.8),
                TraceSegment(1.0, 0.12),
                TraceSegment(1.5, 2.8),
            ),
            label="congestion-collapse",
        ),
        frames=90,
        seed=105,
        faults=FaultPlan(
            seed=24,
            camera_faults=(CameraFault(1, 1.0, 1.8, "dropout"),),
            burst_loss=(
                BurstLossWindow(1.0, 1.9, p_enter=0.1, p_exit=0.3, loss_in_bad=0.8),
            ),
            encoder_faults=(EncoderFault(33),),
            corrupted_frames=(FrameCorruption(40),),
        ),
        tags=("correlated", "revo"),
    ),
    ScenarioSpec(
        name="ladder-stress",
        description=(
            "capacity square wave crossing the encoder floor twice: forces "
            "the watchdog ladder down and back up repeatedly"
        ),
        trace=TraceSpec(
            segments=(
                TraceSegment(1.0, 2.5),
                TraceSegment(0.8, 0.1),
                TraceSegment(1.0, 2.5),
                TraceSegment(0.8, 0.1),
                TraceSegment(1.0, 2.5),
            ),
            label="square-wave",
        ),
        frames=120,
        seed=106,
        tags=("ladder", "watchdog"),
    ),
    ScenarioSpec(
        name="camera-flap",
        description="two cameras flapping (repeated dropout/stale windows)",
        trace=_flat(2.8, label="steady-2.8mbps"),
        frames=75,
        seed=107,
        faults=FaultPlan(
            seed=25,
            camera_faults=(
                CameraFault(1, 0.3, 0.6, "dropout"),
                CameraFault(1, 1.0, 1.3, "dropout"),
                CameraFault(1, 1.7, 2.0, "dropout"),
                CameraFault(2, 0.5, 0.8, "stale"),
                CameraFault(2, 1.2, 1.5, "stale"),
            ),
        ),
        tags=("capture",),
    ),
    ScenarioSpec(
        name="elevator-fade",
        description=(
            "deep fade to 0.1 Mbps and back (elevator ride) with a stale "
            "camera through the fade"
        ),
        trace=TraceSpec(
            segments=(
                TraceSegment(0.8, 3.0),
                TraceSegment(0.6, 3.0, 0.1),
                TraceSegment(0.5, 0.1),
                TraceSegment(0.6, 0.1, 3.0),
                TraceSegment(0.8, 3.0),
            ),
            label="elevator-fade",
        ),
        frames=90,
        seed=108,
        user_index=1,
        faults=FaultPlan(
            seed=26,
            camera_faults=(CameraFault(2, 1.0, 1.6, "stale"),),
        ),
        tags=("fade", "mobility"),
    ),
    ScenarioSpec(
        name="multiparty-churn",
        description=(
            "SLAMCast-style multi-client churn: peers join and leave a "
            "shared-encode multiway conference"
        ),
        trace=_flat(3.0, label="steady-3mbps"),
        kind="multiway",
        frames=60,
        seed=109,
        initial_peers=("alice", "bob"),
        churn=(
            ChurnEvent(0.4, "join", "carol"),
            ChurnEvent(0.8, "join", "dave"),
            ChurnEvent(1.2, "leave", "bob"),
            ChurnEvent(1.6, "leave", "carol"),
        ),
        tags=("multiway", "churn"),
    ),
    ScenarioSpec(
        name="sfu-heterogeneous-links",
        description=(
            "SFU fan-out under churn with asymmetric downlinks: one "
            "ethernet receiver, one cellular straggler, late joiners on "
            "the default link"
        ),
        trace=_flat(3.0, label="steady-3mbps"),
        kind="multiway",
        multiway_mode="sfu",
        frames=60,
        seed=110,
        initial_peers=("eve", "frank"),
        churn=(
            ChurnEvent(0.5, "join", "grace"),
            ChurnEvent(1.1, "leave", "frank"),
            ChurnEvent(1.5, "join", "heidi"),
        ),
        receiver_links=(
            ReceiverLink("eve", 8.0),
            ReceiverLink("frank", 0.9, propagation_s=0.06),
        ),
        tags=("multiway", "sfu", "churn"),
    ),
)

SCENARIOS: dict[str, ScenarioSpec] = {spec.name: spec for spec in _ZOO}


def scenario_names() -> list[str]:
    """Every zoo scenario, in definition order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a zoo scenario (ValueError with suggestions when absent)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise ValueError(f"unknown scenario {name!r}; known: {known}") from None
