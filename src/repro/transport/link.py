"""Trace-driven bottleneck link (Mahimahi's role in the paper's testbed).

A single bottleneck with:

- time-varying service rate from a :class:`BandwidthTrace`;
- a FIFO queue bounded by maximum queueing delay (drop-tail);
- fixed one-way propagation delay;
- optional random packet loss.

The model is a fluid-service queue evaluated per packet on the trace's
cumulative-capacity integral: each enqueue computes when the bottleneck
finishes serving the packet as ``C^-1(C(start) + bits)``, which is
exact for FIFO service and piecewise-constant capacity (including
zero-rate outage intervals) and O(log intervals) per packet.

:meth:`EmulatedLink.send_batch` offers a whole burst of packets sharing
one send time as structure-of-arrays: finish times come from one
``cumsum`` + vectorized inverse lookup, loss draws come from the same
RNG stream in the same order as repeated :meth:`EmulatedLink.send`
calls, and the returned arrivals/statuses are bit-identical to the
scalar path (see DESIGN.md §10 for the parity contract).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.transport.packet import Packet
from repro.transport.traces import BandwidthTrace

__all__ = [
    "LinkConfig",
    "EmulatedLink",
    "STATUS_DELIVERED",
    "STATUS_QUEUE_DROP",
    "STATUS_FAULT_DROP",
    "STATUS_LOSS_DROP",
    "STATUS_SOCKET_DROP",
]

# Per-packet outcome codes returned by :meth:`EmulatedLink.send_batch`.
STATUS_DELIVERED = 0
STATUS_QUEUE_DROP = 1  # drop-tail at the bottleneck queue (never transmitted)
STATUS_FAULT_DROP = 2  # swallowed by the fault hook (transmitted, lost downstream)
STATUS_LOSS_DROP = 3  # random loss (transmitted, lost downstream)
STATUS_SOCKET_DROP = 4  # receive-socket buffer overflow at the far end


@dataclass(frozen=True)
class LinkConfig:
    """Link parameters.

    Attributes:
        propagation_delay_s: one-way propagation delay.
        max_queue_delay_s: drop-tail bound expressed as queueing delay
            (Mahimahi-style bounded buffer).
        loss_rate: i.i.d. random loss probability.
        seed: RNG seed for loss draws.
        receive_buffer_bytes: receiver UDP socket buffer.  Packets that
            arrive while the application hasn't drained the buffer are
            dropped when it overflows -- appendix A.1: "Because 4K
            videos are large, the default Linux UDP socket buffer
            (213 KB) proved insufficient, so we increased it."  None
            disables the model (an amply sized buffer).
        receive_drain_rate_bps: how fast the receiving application
            drains the socket buffer (decode ingest rate).
    """

    propagation_delay_s: float = 0.02
    max_queue_delay_s: float = 0.3
    loss_rate: float = 0.0
    seed: int = 0
    receive_buffer_bytes: int | None = None
    receive_drain_rate_bps: float = 400e6

    def __post_init__(self) -> None:
        if self.propagation_delay_s < 0:
            raise ValueError("propagation_delay_s must be non-negative")
        if self.max_queue_delay_s <= 0:
            raise ValueError("max_queue_delay_s must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.receive_buffer_bytes is not None and self.receive_buffer_bytes <= 0:
            raise ValueError("receive_buffer_bytes must be positive")
        if self.receive_drain_rate_bps <= 0:
            raise ValueError("receive_drain_rate_bps must be positive")


class EmulatedLink:
    """One-direction bottleneck link driven by a bandwidth trace."""

    def __init__(
        self,
        trace: BandwidthTrace,
        config: LinkConfig | None = None,
        fault_hook: Callable[[Packet], bool] | None = None,
    ) -> None:
        self.trace = trace
        self.config = config or LinkConfig()
        # Injected loss model (outages, burst loss): called per offered
        # packet, returns True to swallow it.  Deterministic hooks keep
        # the link itself deterministic -- the hook never touches the
        # link's own RNG stream.
        self.fault_hook = fault_hook
        self._rng = np.random.default_rng(self.config.seed)
        self._queue_free_at = 0.0  # when the bottleneck finishes its backlog
        # C(_queue_free_at): the same state in cumulative-bits space.
        # Chaining service through cumulative bits (instead of round-
        # tripping through C^-1 then C) is what lets the batched path's
        # cumsum reproduce the scalar path bit-for-bit.
        self._queue_free_cum = 0.0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.fault_drops = 0
        self.bytes_delivered = 0
        # Receive-socket-buffer model (appendix A.1).
        self._socket_fill_bytes = 0.0
        self._socket_last_arrival = 0.0
        self.socket_drops = 0

    def _service_finish_time(self, start: float, size_bytes: int) -> float:
        """Finish time for serving ``size_bytes`` starting at ``start``.

        Inverse lookup on the trace's cumulative-capacity integral;
        zero-rate intervals are plateaus the inverse skips over (the
        old per-interval walk span forever on them).
        """
        target = self.trace.cumulative_bits_at(start) + size_bytes * 8.0
        return self.trace.time_for_cumulative(target)

    def send(self, packet: Packet) -> float | None:
        """Offer a packet to the link at ``packet.send_time_s``.

        Returns the arrival time at the far end, or None if the packet
        was dropped (queue overflow or random loss).  Packets must be
        offered in nondecreasing send-time order (FIFO link).
        """
        self.packets_sent += 1
        arrival, _status = self._admit(packet.send_time_s, packet.size_bytes, packet)
        if arrival is not None:
            packet.arrival_time_s = arrival
        return arrival

    def _admit(
        self, now: float, size_bytes: int, packet: Packet | None
    ) -> tuple[float | None, int]:
        """Scalar admission: queue check, fault hook, loss draw, serve.

        Shared by :meth:`send` and :meth:`send_batch`'s rare fallback;
        updates every counter except ``packets_sent`` (the caller's).
        """
        config = self.config
        busy = self._queue_free_at > now
        start = self._queue_free_at if busy else now
        if start - now > config.max_queue_delay_s:
            self.packets_dropped += 1
            return None, STATUS_QUEUE_DROP
        start_cum = self._queue_free_cum if busy else self.trace.cumulative_bits_at(now)
        target = start_cum + size_bytes * 8.0
        if self.fault_hook is not None and packet is not None and self.fault_hook(packet):
            # Fault-injected loss (outage, burst): like random loss, the
            # packet occupies the bottleneck and dies downstream.
            self._occupy(target)
            self.packets_dropped += 1
            self.fault_drops += 1
            return None, STATUS_FAULT_DROP
        if config.loss_rate > 0 and self._rng.random() < config.loss_rate:
            # Random loss still occupies the bottleneck (the packet is
            # transmitted, then lost downstream).
            self._occupy(target)
            self.packets_dropped += 1
            return None, STATUS_LOSS_DROP
        finish = self._occupy(target)
        arrival = finish + config.propagation_delay_s
        if not self._socket_admit(size_bytes, arrival):
            self.packets_dropped += 1
            self.socket_drops += 1
            return None, STATUS_SOCKET_DROP
        self.bytes_delivered += size_bytes
        return arrival, STATUS_DELIVERED

    def _occupy(self, target_cum_bits: float) -> float:
        """Advance the bottleneck to ``C^-1(target)``; returns the finish time."""
        finish = self.trace.time_for_cumulative(target_cum_bits)
        self._queue_free_at = finish
        self._queue_free_cum = target_cum_bits
        return finish

    def send_batch(
        self,
        send_time: float,
        sizes_bytes: np.ndarray | Sequence[int],
        packets: Sequence[Packet] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Offer a burst of packets sharing ``send_time``, FIFO order.

        Returns ``(arrivals, status)``: arrivals are NaN except where
        ``status == STATUS_DELIVERED``, and both are bit-identical to
        offering the same packets one by one through :meth:`send`.
        ``packets`` must be provided when a ``fault_hook`` is installed
        (the hook's contract is per-packet and possibly stateful, so it
        is still called once per transmitted packet, in order).
        """
        sizes = np.asarray(sizes_bytes, dtype=np.int64)
        n = int(sizes.shape[0])
        arrivals = np.full(n, np.nan)
        status = np.empty(n, dtype=np.int8)
        if n == 0:
            return arrivals, status
        if self.fault_hook is not None and packets is None:
            raise ValueError("send_batch needs materialized packets when a fault_hook is set")
        self.packets_sent += n
        config = self.config
        now = send_time
        busy = self._queue_free_at > now
        start0 = self._queue_free_at if busy else now
        if start0 - now > config.max_queue_delay_s:
            # The whole burst arrives behind an over-limit backlog.
            status[:] = STATUS_QUEUE_DROP
            self.packets_dropped += n
            return arrivals, status
        start0_cum = self._queue_free_cum if busy else self.trace.cumulative_bits_at(now)
        # Chained service targets: cumsum accumulates left-to-right, so
        # target[i] == target[i-1] + bits[i] exactly as scalar chaining.
        chain = sizes * 8.0
        chain[0] += start0_cum
        targets = np.cumsum(chain)
        finishes = self.trace.times_for_cumulative(targets)
        if n > 1 and not np.all(finishes[:-1] > now):
            # Pathological float edge: a chained finish landed at/behind
            # the send time, so later packets would re-read C(now)
            # instead of chaining.  Replay scalar admission per packet.
            return self._send_batch_scalar(now, sizes, packets, arrivals, status)
        # Queue-delay drop-tail: packet i starts at finishes[i-1] (or
        # start0), and queue delay within a same-send-time burst is
        # nondecreasing, so drops are a suffix.  Dropped-tail packets
        # never transmit: no fault hook call, no RNG draw.
        starts = np.empty(n)
        starts[0] = start0
        starts[1:] = finishes[:-1]
        over = (starts - now) > config.max_queue_delay_s
        k = int(np.argmax(over)) if over.any() else n
        if k < n:
            status[k:] = STATUS_QUEUE_DROP
            self.packets_dropped += n - k
        if k == 0:
            return arrivals, status
        status[:k] = STATUS_DELIVERED
        # Fault hook: per transmitted packet, in offer order (the hook
        # may be stateful, e.g. Gilbert-Elliott burst loss).
        fault = np.zeros(k, dtype=bool)
        if self.fault_hook is not None:
            hook = self.fault_hook
            for i in range(k):
                if hook(packets[i]):
                    fault[i] = True
            num_faults = int(fault.sum())
            if num_faults:
                status[:k][fault] = STATUS_FAULT_DROP
                self.packets_dropped += num_faults
                self.fault_drops += num_faults
        # Random loss: one block draw from the same stream, covering
        # exactly the packets the scalar path would have drawn for.
        eligible = ~fault
        if config.loss_rate > 0:
            m = int(eligible.sum())
            if m:
                draws = self._rng.random(m)
                lost = np.zeros(k, dtype=bool)
                lost[eligible] = draws < config.loss_rate
                num_lost = int(lost.sum())
                if num_lost:
                    status[:k][lost] = STATUS_LOSS_DROP
                    self.packets_dropped += num_lost
                eligible &= ~lost
        # Every transmitted packet (delivered or lost downstream)
        # occupies the bottleneck; the last one leaves the queue state.
        self._queue_free_at = float(finishes[k - 1])
        self._queue_free_cum = float(targets[k - 1])
        delivered_arrivals = finishes[:k] + config.propagation_delay_s
        if config.receive_buffer_bytes is not None:
            for i in np.flatnonzero(eligible):
                if not self._socket_admit(int(sizes[i]), float(delivered_arrivals[i])):
                    status[i] = STATUS_SOCKET_DROP
                    self.packets_dropped += 1
                    self.socket_drops += 1
                    eligible[i] = False
        arrivals[:k][eligible] = delivered_arrivals[eligible]
        self.bytes_delivered += int(sizes[:k][eligible].sum())
        return arrivals, status

    def _send_batch_scalar(
        self,
        now: float,
        sizes: np.ndarray,
        packets: Sequence[Packet] | None,
        arrivals: np.ndarray,
        status: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-packet fallback with send_batch's return convention."""
        for i in range(int(sizes.shape[0])):
            packet = packets[i] if packets is not None else None
            arrival, code = self._admit(now, int(sizes[i]), packet)
            status[i] = code
            if arrival is not None:
                arrivals[i] = arrival
        return arrivals, status

    def _socket_admit(self, size_bytes: int, arrival: float) -> bool:
        """Receive-socket buffer: drain since the last arrival, then
        accept iff the packet fits (appendix A.1's overflow effect)."""
        if self.config.receive_buffer_bytes is None:
            return True
        elapsed = max(arrival - self._socket_last_arrival, 0.0)
        drained = elapsed * self.config.receive_drain_rate_bps / 8.0
        self._socket_fill_bytes = max(self._socket_fill_bytes - drained, 0.0)
        self._socket_last_arrival = arrival
        if self._socket_fill_bytes + size_bytes > self.config.receive_buffer_bytes:
            return False
        self._socket_fill_bytes += size_bytes
        return True

    def queue_delay_at(self, t: float) -> float:
        """Current queueing delay a new packet would see at time ``t``."""
        return max(0.0, self._queue_free_at - t)

    @property
    def loss_fraction(self) -> float:
        """Fraction of offered packets dropped so far."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent
