"""Trace-driven bottleneck link (Mahimahi's role in the paper's testbed).

A single bottleneck with:

- time-varying service rate from a :class:`BandwidthTrace`;
- a FIFO queue bounded by maximum queueing delay (drop-tail);
- fixed one-way propagation delay;
- optional random packet loss.

The model is a fluid-service queue evaluated per packet: each enqueue
computes when the bottleneck finishes serving the packet given the
capacity trace and the queue backlog, which is exact for FIFO service
and piecewise-constant capacity.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.transport.packet import Packet
from repro.transport.traces import BandwidthTrace

__all__ = ["LinkConfig", "EmulatedLink"]


@dataclass(frozen=True)
class LinkConfig:
    """Link parameters.

    Attributes:
        propagation_delay_s: one-way propagation delay.
        max_queue_delay_s: drop-tail bound expressed as queueing delay
            (Mahimahi-style bounded buffer).
        loss_rate: i.i.d. random loss probability.
        seed: RNG seed for loss draws.
        receive_buffer_bytes: receiver UDP socket buffer.  Packets that
            arrive while the application hasn't drained the buffer are
            dropped when it overflows -- appendix A.1: "Because 4K
            videos are large, the default Linux UDP socket buffer
            (213 KB) proved insufficient, so we increased it."  None
            disables the model (an amply sized buffer).
        receive_drain_rate_bps: how fast the receiving application
            drains the socket buffer (decode ingest rate).
    """

    propagation_delay_s: float = 0.02
    max_queue_delay_s: float = 0.3
    loss_rate: float = 0.0
    seed: int = 0
    receive_buffer_bytes: int | None = None
    receive_drain_rate_bps: float = 400e6

    def __post_init__(self) -> None:
        if self.propagation_delay_s < 0:
            raise ValueError("propagation_delay_s must be non-negative")
        if self.max_queue_delay_s <= 0:
            raise ValueError("max_queue_delay_s must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.receive_buffer_bytes is not None and self.receive_buffer_bytes <= 0:
            raise ValueError("receive_buffer_bytes must be positive")
        if self.receive_drain_rate_bps <= 0:
            raise ValueError("receive_drain_rate_bps must be positive")


class EmulatedLink:
    """One-direction bottleneck link driven by a bandwidth trace."""

    def __init__(
        self,
        trace: BandwidthTrace,
        config: LinkConfig | None = None,
        fault_hook: Callable[[Packet], bool] | None = None,
    ) -> None:
        self.trace = trace
        self.config = config or LinkConfig()
        # Injected loss model (outages, burst loss): called per offered
        # packet, returns True to swallow it.  Deterministic hooks keep
        # the link itself deterministic -- the hook never touches the
        # link's own RNG stream.
        self.fault_hook = fault_hook
        self._rng = np.random.default_rng(self.config.seed)
        self._queue_free_at = 0.0  # when the bottleneck finishes its backlog
        self.packets_sent = 0
        self.packets_dropped = 0
        self.fault_drops = 0
        self.bytes_delivered = 0
        # Receive-socket-buffer model (appendix A.1).
        self._socket_fill_bytes = 0.0
        self._socket_last_arrival = 0.0
        self.socket_drops = 0

    def _service_finish_time(self, start: float, size_bytes: int) -> float:
        """Finish time for serving ``size_bytes`` starting at ``start``.

        Integrates the piecewise-constant capacity trace.
        """
        remaining_bits = size_bytes * 8.0
        t = start
        interval = self.trace.interval_s
        # Walk capacity intervals until the packet is fully served.
        for _ in range(10_000_000):
            rate_bps = self.trace.capacity_bps_at(t)
            boundary = (int(t / interval) + 1) * interval
            window = boundary - t
            can_send = rate_bps * window
            if can_send >= remaining_bits:
                return t + remaining_bits / rate_bps
            remaining_bits -= can_send
            t = boundary
        raise RuntimeError("link service did not converge")

    def send(self, packet: Packet) -> float | None:
        """Offer a packet to the link at ``packet.send_time_s``.

        Returns the arrival time at the far end, or None if the packet
        was dropped (queue overflow or random loss).  Packets must be
        offered in nondecreasing send-time order (FIFO link).
        """
        self.packets_sent += 1
        now = packet.send_time_s
        start = max(now, self._queue_free_at)
        queue_delay = start - now
        if queue_delay > self.config.max_queue_delay_s:
            self.packets_dropped += 1
            return None
        if self.fault_hook is not None and self.fault_hook(packet):
            # Fault-injected loss (outage, burst): like random loss, the
            # packet occupies the bottleneck and dies downstream.
            self._queue_free_at = self._service_finish_time(start, packet.size_bytes)
            self.packets_dropped += 1
            self.fault_drops += 1
            return None
        if self.config.loss_rate > 0 and self._rng.random() < self.config.loss_rate:
            # Random loss still occupies the bottleneck (the packet is
            # transmitted, then lost downstream).
            self._queue_free_at = self._service_finish_time(start, packet.size_bytes)
            self.packets_dropped += 1
            return None
        finish = self._service_finish_time(start, packet.size_bytes)
        self._queue_free_at = finish
        arrival = finish + self.config.propagation_delay_s
        if not self._socket_accepts(packet, arrival):
            self.packets_dropped += 1
            self.socket_drops += 1
            return None
        self.bytes_delivered += packet.size_bytes
        packet.arrival_time_s = arrival
        return arrival

    def _socket_accepts(self, packet: Packet, arrival: float) -> bool:
        """Receive-socket buffer: drain since the last arrival, then
        accept iff the packet fits (appendix A.1's overflow effect)."""
        if self.config.receive_buffer_bytes is None:
            return True
        elapsed = max(arrival - self._socket_last_arrival, 0.0)
        drained = elapsed * self.config.receive_drain_rate_bps / 8.0
        self._socket_fill_bytes = max(self._socket_fill_bytes - drained, 0.0)
        self._socket_last_arrival = arrival
        if self._socket_fill_bytes + packet.size_bytes > self.config.receive_buffer_bytes:
            return False
        self._socket_fill_bytes += packet.size_bytes
        return True

    def queue_delay_at(self, t: float) -> float:
        """Current queueing delay a new packet would see at time ``t``."""
        return max(0.0, self._queue_free_at - t)

    @property
    def loss_fraction(self) -> float:
        """Fraction of offered packets dropped so far."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_dropped / self.packets_sent
