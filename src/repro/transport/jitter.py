"""Receiver jitter buffer.

WebRTC smooths network jitter by delaying playout behind arrival; the
paper uses a 100 ms jitter buffer ("much of [the latency] is
attributable to the jitter buffer in WebRTC: we use 100 ms", Table 6
discussion).  Frames become *ready* at ``arrival + target_delay`` and
are released strictly in sequence order.
"""

from __future__ import annotations

import heapq

__all__ = ["JitterBuffer", "DEFAULT_JITTER_TARGET_S"]

DEFAULT_JITTER_TARGET_S = 0.1


class JitterBuffer:
    """In-order frame release with a fixed playout delay."""

    def __init__(self, target_delay_s: float = DEFAULT_JITTER_TARGET_S) -> None:
        if target_delay_s < 0:
            raise ValueError("target_delay_s must be non-negative")
        self.target_delay_s = float(target_delay_s)
        self._heap: list[tuple[int, float]] = []
        self._released: int = -1

    def insert(self, frame_sequence: int, arrival_time_s: float) -> None:
        """Add a completed frame; late duplicates and stale frames are dropped."""
        if frame_sequence <= self._released:
            return
        heapq.heappush(self._heap, (frame_sequence, arrival_time_s + self.target_delay_s))

    def pop_ready(self, now: float) -> int | None:
        """Release the next in-order frame whose playout time has passed.

        Frames older than the head (skipped sequences) are released in
        order; the caller decides whether a gap means a stall or a skip.
        """
        while self._heap:
            frame_sequence, ready_at = self._heap[0]
            if frame_sequence <= self._released:
                heapq.heappop(self._heap)
                continue
            if ready_at > now:
                return None
            heapq.heappop(self._heap)
            self._released = frame_sequence
            return frame_sequence
        return None

    def skip_to(self, frame_sequence: int) -> None:
        """Advance the release cursor (e.g. after a PLI resync)."""
        self._released = max(self._released, frame_sequence)

    def __len__(self) -> int:
        return len(self._heap)
