"""Per-receiver downlink links for SFU fan-out.

An SFU node owns one :class:`~repro.transport.link.EmulatedLink` per
receiver: each downlink is its own bottleneck (the receiver's access
network), with its own trace, queue state, and loss RNG, all sharing
the vectorized cumulative-capacity model of DESIGN.md §10.

:class:`DownlinkSet` is the registry the SFU drives: links are created
on receiver join (seeded deterministically from the base seed and the
join ordinal, so a conference replays byte-identically regardless of
wall clock), removed on leave, and each forward is offered as one
MTU-packetized burst through :meth:`EmulatedLink.send_batch`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.transport.link import STATUS_DELIVERED, EmulatedLink, LinkConfig
from repro.transport.traces import BandwidthTrace

__all__ = ["DownlinkSet", "DownlinkSend"]

MTU_BYTES = 1200


@dataclass(frozen=True)
class DownlinkSend:
    """Outcome of one forwarded burst on one receiver's downlink."""

    receiver: str
    size_bytes: int
    packets: int
    delivered_packets: int
    delivery_time_s: float | None  # last delivered packet's arrival (None: all lost)
    arrival_times_s: tuple[float, ...]  # delivered arrivals, FIFO order
    delivered_sizes: tuple[int, ...] = ()  # per-delivered-packet bytes (GCC feedback)

    @property
    def complete(self) -> bool:
        """Whether every packet of the burst arrived."""
        return self.delivered_packets == self.packets


class DownlinkSet:
    """The SFU's per-receiver emulated downlinks.

    ``default_trace`` serves receivers that join without their own
    trace (a homogeneous conference); heterogeneous conferences pass a
    per-receiver :class:`BandwidthTrace` at :meth:`add` time.
    """

    def __init__(
        self,
        default_trace: BandwidthTrace,
        config: LinkConfig | None = None,
        mtu_bytes: int = MTU_BYTES,
    ) -> None:
        if mtu_bytes <= 0:
            raise ValueError("mtu_bytes must be positive")
        self.default_trace = default_trace
        self.config = config or LinkConfig()
        self.mtu_bytes = int(mtu_bytes)
        self._links: dict[str, EmulatedLink] = {}
        self._join_ordinal = 0
        self.bursts_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_offered = 0

    def __contains__(self, name: str) -> bool:
        return name in self._links

    def __len__(self) -> int:
        return len(self._links)

    @property
    def names(self) -> list[str]:
        """Receivers with an active downlink, in join order."""
        return list(self._links)

    def add(self, name: str, trace: BandwidthTrace | None = None) -> EmulatedLink:
        """Provision a downlink for a joining receiver."""
        if name in self._links:
            raise ValueError(f"downlink for {name!r} already exists")
        # Each downlink draws loss from its own stream; deriving the
        # seed from the join ordinal (not the name hash) keeps replays
        # independent of Python's string-hash randomization.
        seeded = replace(self.config, seed=self.config.seed + 7919 * self._join_ordinal)
        self._join_ordinal += 1
        link = EmulatedLink(trace or self.default_trace, seeded)
        self._links[name] = link
        return link

    def remove(self, name: str) -> None:
        """Tear down a leaving receiver's downlink."""
        if name not in self._links:
            raise ValueError(f"no downlink for {name!r}")
        del self._links[name]

    def link(self, name: str) -> EmulatedLink:
        """The receiver's live link (KeyError if absent)."""
        return self._links[name]

    def send(self, name: str, now: float, size_bytes: int) -> DownlinkSend:
        """Offer one forwarded frame as an MTU-packetized burst."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        link = self._links[name]
        if size_bytes == 0:
            return DownlinkSend(name, 0, 0, 0, now + link.config.propagation_delay_s, ())
        count = max(1, math.ceil(size_bytes / self.mtu_bytes))
        sizes = np.full(count, self.mtu_bytes, dtype=np.int64)
        sizes[-1] = size_bytes - self.mtu_bytes * (count - 1)
        arrivals, status = link.send_batch(now, sizes)
        delivered = status == STATUS_DELIVERED
        delivered_arrivals = arrivals[delivered]
        self.bursts_sent += 1
        self.packets_sent += count
        self.packets_dropped += int(count - delivered.sum())
        self.bytes_offered += int(size_bytes)
        return DownlinkSend(
            receiver=name,
            size_bytes=int(size_bytes),
            packets=count,
            delivered_packets=int(delivered.sum()),
            delivery_time_s=float(delivered_arrivals[-1]) if delivered.any() else None,
            arrival_times_s=tuple(float(t) for t in delivered_arrivals),
            delivered_sizes=tuple(int(s) for s in sizes[delivered]),
        )

    def queue_delay_at(self, name: str, t: float) -> float:
        """Backlog delay a new packet would see on one downlink."""
        return self._links[name].queue_delay_at(t)

    def metrics_into(self, registry) -> None:
        """Export aggregate downlink counters as ``sfu.downlink.*``."""
        registry.counter("sfu.downlink.bursts").inc(self.bursts_sent)
        registry.counter("sfu.downlink.packets_sent").inc(self.packets_sent)
        registry.counter("sfu.downlink.packets_dropped").inc(self.packets_dropped)
        registry.counter("sfu.downlink.bytes_offered").inc(self.bytes_offered)
        registry.gauge("sfu.downlink.active").set(len(self._links))
