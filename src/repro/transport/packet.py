"""Packet types shared across the transport simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Packet", "DEFAULT_MTU"]

# Typical Ethernet payload budget after IP/UDP/RTP headers.
DEFAULT_MTU = 1200


@dataclass(slots=True)
class Packet:
    """One RTP-like packet in flight.

    Attributes:
        sequence: transport-level sequence number (per channel).
        stream_id: which media stream this packet belongs to
            (LiVo runs two: color and depth).
        frame_sequence: the video frame this packet carries a piece of.
        fragment: fragment index within the frame.
        num_fragments: total fragments of the frame.
        size_bytes: payload + header size.
        send_time_s: when the sender handed it to the link.
        is_retransmit: True for NACK-triggered retransmissions.
    """

    sequence: int
    stream_id: int
    frame_sequence: int
    fragment: int
    num_fragments: int
    size_bytes: int
    send_time_s: float
    is_retransmit: bool = False
    arrival_time_s: float | None = field(default=None, compare=False)
