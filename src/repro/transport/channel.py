"""WebRTC-like media channel: packetization + congestion control + recovery.

Ties the transport pieces together the way the paper's stack does
(section 3.3 background, appendix A.1):

- frames are fragmented into RTP-like packets and offered to the
  emulated bottleneck link in send-time order;
- per-packet timing feedback returns over the reverse path and drives
  the GCC bandwidth estimate and a smoothed application-level RTT
  (halved by LiVo to predict the one-way delay, section 3.4);
- lost packets trigger NACK retransmissions; when retries are exhausted
  the frame is abandoned and a PLI-style keyframe request is raised
  ("we enable several WebRTC features, including negative
  acknowledgments, Picture Loss Indication (PLI)...", appendix A.1).

Everything is event-driven on simulated time: ``process_until(now)``
advances the channel clock and makes completed frames visible.

Two equivalent execution paths exist (DESIGN.md §10).  The default
*fast path* simulates each frame's packets as one structure-of-arrays
batch: a single link event computes every finish time with one
vectorized cumulative-capacity lookup, delivered fragments feed the
assembler as one run, and feedback returns as one chunked run that
replays GCC / loss-window / SRTT updates in exact scalar event order.
``Packet`` objects are materialized only where per-packet identity
matters: losses (NACK state), retransmissions, FEC repair, and fault
hooks.  The *scalar path* (``fast_path=False``) keeps one heap event
per packet.  Both paths consume the link's RNG stream in the same
order and produce bit-identical deliveries, drops, and estimates.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.perf.counters import BatchCounters
from repro.transport.fec import FECGroupTracker, parity_packet_for
from repro.transport.gcc import GCCConfig, GoogleCongestionControl
from repro.transport.link import STATUS_DELIVERED, EmulatedLink
from repro.transport.packet import DEFAULT_MTU, Packet
from repro.transport.rtp import RTP_HEADER_BYTES, FrameAssembler, packetize

__all__ = ["WebRTCConfig", "FrameDelivery", "WebRTCChannel"]


@dataclass(frozen=True)
class WebRTCConfig:
    """Channel parameters.

    ``fec_group_size`` enables XOR-parity forward error correction:
    every group of that many media packets is followed by one parity
    packet, and single losses per group are repaired locally instead of
    waiting a NACK round trip (see :mod:`repro.transport.fec`).  None
    disables FEC (the paper's configuration).
    """

    mtu: int = DEFAULT_MTU
    reverse_delay_s: float = 0.02
    nack_retries: int = 3
    loss_detection_grace_s: float = 0.02
    rtt_smoothing: float = 0.125  # classic SRTT EWMA gain
    loss_window_s: float = 1.0
    fec_group_size: int | None = None


@dataclass(frozen=True)
class FrameDelivery:
    """A frame that fully arrived at the receiver."""

    stream_id: int
    frame_sequence: int
    send_time_s: float
    completion_time_s: float


class _FrameBatch:
    """One frame's packets as structure-of-arrays (fast path).

    Media fragments occupy indexes ``0 .. n_media-1`` in fragment
    order; when FEC is on, per-group parity packets follow at indexes
    ``n_media .. n_media+groups-1`` (the scalar path's offer order).
    """

    __slots__ = (
        "stream_id",
        "frame_sequence",
        "num_fragments",
        "sequences",
        "fragments",
        "sizes",
        "n_media",
        "retries",
        "group_sizes",
    )

    def __init__(
        self,
        stream_id: int,
        frame_sequence: int,
        num_fragments: int,
        sequences: np.ndarray,
        fragments: np.ndarray,
        sizes: np.ndarray,
        n_media: int,
        retries: int,
        group_sizes: list[int] | None,
    ) -> None:
        self.stream_id = stream_id
        self.frame_sequence = frame_sequence
        self.num_fragments = num_fragments
        self.sequences = sequences
        self.fragments = fragments
        self.sizes = sizes
        self.n_media = n_media
        self.retries = retries
        self.group_sizes = group_sizes


class _FeedbackRun:
    """A frame burst's pending feedback as arrays (fast path).

    Entry ``i`` is the feedback of one delivered packet: it fires at
    ``times[i]`` with the per-packet tiebreak reserved at offer time,
    so chunked processing interleaves with other heap events exactly
    where the scalar path's individual feedback events would.
    """

    __slots__ = ("send_time", "times", "arrivals", "sizes", "tiebreaks", "index")

    def __init__(
        self,
        send_time: float,
        times: list[float],
        arrivals: list[float],
        sizes: list[int],
        tiebreaks: list[int],
    ) -> None:
        self.send_time = send_time
        self.times = times
        self.arrivals = arrivals
        self.sizes = sizes
        self.tiebreaks = tiebreaks
        self.index = 0


class WebRTCChannel:
    """One-direction media channel over an emulated link."""

    def __init__(
        self,
        link: EmulatedLink,
        config: WebRTCConfig | None = None,
        gcc_config: GCCConfig | None = None,
        num_streams: int = 2,
        fast_path: bool = True,
    ) -> None:
        self.link = link
        self.config = config or WebRTCConfig()
        self.gcc = GoogleCongestionControl(gcc_config)
        self.fast_path = fast_path
        self._assemblers = [FrameAssembler() for _ in range(num_streams)]
        self._events: list[tuple[float, int, str, object]] = []
        self._tiebreak = 0
        self._packet_sequence = 0
        self._frame_send_times: dict[tuple[int, int], float] = {}
        self._deliveries: list[FrameDelivery] = []
        self._needs_keyframe = [False] * num_streams
        self._srtt: float | None = None
        # Loss window: aggregated (time, lost, total) runs plus running
        # totals, so _loss_fraction is O(1) instead of an O(window)
        # recount on every feedback and NACK.
        self._loss_events: deque[tuple[float, int, int]] = deque()
        self._loss_lost = 0
        self._loss_total = 0
        self.frames_lost: list[tuple[int, int]] = []
        self._abandoned: set[tuple[int, int]] = set()
        # NACK chains still in flight per frame; a released frame's
        # abandon/repair markers stay alive until its chains drain.
        self._pending_nacks: dict[tuple[int, int], int] = {}
        self._released: set[tuple[int, int]] = set()
        self.marker_frames: list[tuple[int, int]] = []
        self.bytes_sent_per_stream = [0] * num_streams
        self._clock = 0.0
        self.batch_counters = BatchCounters("transport_batch")
        # FEC state (only touched when fec_group_size is set).
        self._fec_tracker = FECGroupTracker()
        self._fec_group_counter = 0
        self._packet_fec_group: dict[int, tuple[int, int]] = {}
        self._fec_group_members: dict[int, list[int]] = {}
        self._fec_repaired: set[int] = set()
        self._fec_repaired_frames: dict[tuple[int, int], list[int]] = {}

    def metrics_into(self, registry) -> None:
        """Fold this channel's counters into a ``repro.obs`` registry.

        Registers the batch/scalar fast-path counters under their
        established ``cache.transport_batch.*`` names plus per-stream
        byte totals and loss/abandon counts.
        """
        registry.absorb_counters(self.batch_counters)
        for stream_id, sent in enumerate(self.bytes_sent_per_stream):
            registry.counter(f"transport.stream{stream_id}.bytes_sent").inc(sent)
        registry.counter("transport.frames_lost").inc(len(self.frames_lost))
        registry.counter("transport.frames_abandoned").inc(len(self._abandoned))
        registry.counter("transport.marker_frames").inc(len(self.marker_frames))
        registry.gauge("transport.target_rate_bps").set(self.target_rate_bps())

    # ------------------------------------------------------------------
    # Sender API
    # ------------------------------------------------------------------

    def send_frame(self, stream_id: int, frame_sequence: int, size_bytes: int, now: float) -> None:
        """Offer one encoded frame for transmission at time ``now``.

        A zero-byte frame is legitimate -- an aggressively culled view
        can encode to (effectively) nothing -- and is carried as a
        single header-only marker packet so the receiver still observes
        the frame boundary instead of the sender crashing.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.fast_path:
            self._send_frame_batched(stream_id, frame_sequence, size_bytes, now)
            return
        if size_bytes == 0:
            self._send_marker_frame(stream_id, frame_sequence, now)
            return
        packets = packetize(
            stream_id,
            frame_sequence,
            size_bytes,
            now,
            self._packet_sequence,
            mtu=self.config.mtu,
        )
        self._packet_sequence += len(packets)
        self._frame_send_times[(stream_id, frame_sequence)] = now
        self.bytes_sent_per_stream[stream_id] += sum(p.size_bytes for p in packets)
        for packet in packets:
            self._schedule(now, "offer", (packet, self.config.nack_retries))
        if self.config.fec_group_size:
            self._send_fec_parity(stream_id, packets, now)

    def _send_frame_batched(
        self, stream_id: int, frame_sequence: int, size_bytes: int, now: float
    ) -> None:
        """Packetize straight to arrays; one heap event for the burst."""
        config = self.config
        if size_bytes == 0:
            sizes = np.array([RTP_HEADER_BYTES], dtype=np.int64)
            fragments = np.zeros(1, dtype=np.int64)
            n_media = 1
            num_fragments = 1
            group_sizes = None
            self.marker_frames.append((stream_id, frame_sequence))
        else:
            if config.mtu <= RTP_HEADER_BYTES:
                raise ValueError("mtu must exceed the RTP header size")
            payload_per_packet = config.mtu - RTP_HEADER_BYTES
            num_fragments = -(-size_bytes // payload_per_packet)
            sizes = np.full(num_fragments, config.mtu, dtype=np.int64)
            sizes[-1] = size_bytes - payload_per_packet * (num_fragments - 1) + RTP_HEADER_BYTES
            fragments = np.arange(num_fragments, dtype=np.int64)
            n_media = num_fragments
            group_sizes = None
            if config.fec_group_size:
                group_starts = np.arange(0, n_media, config.fec_group_size)
                parity_sizes = np.maximum.reduceat(sizes, group_starts)
                group_sizes = np.diff(np.append(group_starts, n_media)).tolist()
                sizes = np.concatenate([sizes, parity_sizes])
                fragments = np.concatenate(
                    [fragments, np.full(len(group_starts), -1, dtype=np.int64)]
                )
                self._fec_group_counter += len(group_starts)
        first_sequence = self._packet_sequence
        self._packet_sequence += int(sizes.shape[0])
        sequences = np.arange(first_sequence, self._packet_sequence, dtype=np.int64)
        self._frame_send_times[(stream_id, frame_sequence)] = now
        self.bytes_sent_per_stream[stream_id] += int(sizes.sum())
        batch = _FrameBatch(
            stream_id,
            frame_sequence,
            num_fragments,
            sequences,
            fragments,
            sizes,
            n_media,
            config.nack_retries,
            group_sizes,
        )
        self._schedule(now, "offer_batch", batch)

    def _send_marker_frame(self, stream_id: int, frame_sequence: int, now: float) -> None:
        """Send a header-only marker for an empty frame (recorded)."""
        marker = Packet(
            sequence=self._packet_sequence,
            stream_id=stream_id,
            frame_sequence=frame_sequence,
            fragment=0,
            num_fragments=1,
            size_bytes=RTP_HEADER_BYTES,
            send_time_s=now,
        )
        self._packet_sequence += 1
        self._frame_send_times[(stream_id, frame_sequence)] = now
        self.bytes_sent_per_stream[stream_id] += marker.size_bytes
        self.marker_frames.append((stream_id, frame_sequence))
        self._schedule(now, "offer", (marker, self.config.nack_retries))

    def _send_fec_parity(self, stream_id: int, packets: list[Packet], now: float) -> None:
        """Group a frame's packets and append XOR parity packets."""
        group_size = self.config.fec_group_size
        assert group_size is not None
        for start in range(0, len(packets), group_size):
            group = packets[start : start + group_size]
            group_id = self._fec_group_counter
            self._fec_group_counter += 1
            members = []
            for packet in group:
                self._packet_fec_group[packet.sequence] = (group_id, len(group))
                members.append(packet.sequence)
            parity = parity_packet_for(group, self._packet_sequence)
            self._packet_sequence += 1
            self._packet_fec_group[parity.sequence] = (group_id, len(group))
            members.append(parity.sequence)
            self._fec_group_members[group_id] = members
            self.bytes_sent_per_stream[stream_id] += parity.size_bytes
            # Parity is best-effort: no NACK retries for it.
            self._schedule(now, "offer", (parity, 0))

    def target_rate_bps(self) -> float:
        """Current GCC bandwidth estimate (the encoder's rate input)."""
        return self.gcc.target_rate_bps()

    @property
    def rtt_s(self) -> float:
        """Smoothed application-level RTT estimate."""
        if self._srtt is None:
            return 2.0 * (self.link.config.propagation_delay_s + self.config.reverse_delay_s)
        return self._srtt

    @property
    def one_way_delay_estimate_s(self) -> float:
        """LiVo's Delta-t: half the smoothed RTT (section 3.4)."""
        return self.rtt_s / 2.0

    def needs_keyframe(self, stream_id: int) -> bool:
        """True when a PLI is pending for this stream (consumed on read)."""
        pending = self._needs_keyframe[stream_id]
        self._needs_keyframe[stream_id] = False
        return pending

    # ------------------------------------------------------------------
    # Receiver API
    # ------------------------------------------------------------------

    def frame_abandoned(self, stream_id: int, frame_sequence: int) -> bool:
        """Whether a frame's retransmissions were exhausted (PLI path)."""
        return (stream_id, frame_sequence) in self._abandoned

    def poll_deliveries(self, now: float) -> list[FrameDelivery]:
        """Advance the clock and return frames completed by ``now``."""
        self.process_until(now)
        ready = [d for d in self._deliveries if d.completion_time_s <= now]
        self._deliveries = [d for d in self._deliveries if d.completion_time_s > now]
        return ready

    def release_frame(self, frame_sequence: int) -> None:
        """Drop retained per-frame bookkeeping once the application has
        resolved the frame (rendered, frozen over, or given up).

        Long sessions call this as they prune their own frame state so
        channel-side maps stay bounded.  Markers a still-in-flight NACK
        chain consults (the abandoned set, FEC-repair cancellations)
        are kept alive until the chain drains, so behaviour is
        unchanged -- only memory is reclaimed.
        """
        for stream_id in range(len(self._assemblers)):
            key = (stream_id, frame_sequence)
            self._frame_send_times.pop(key, None)
            self._assemblers[stream_id].release_frame(frame_sequence)
            if self._pending_nacks.get(key):
                self._released.add(key)
            else:
                self._release_key(key)

    def _release_key(self, key: tuple[int, int]) -> None:
        self._abandoned.discard(key)
        for sequence in self._fec_repaired_frames.pop(key, ()):
            self._fec_repaired.discard(sequence)

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------

    def _next_tiebreak(self) -> int:
        tiebreak = self._tiebreak
        self._tiebreak += 1
        return tiebreak

    def _schedule(self, time_s: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time_s, self._next_tiebreak(), kind, payload))

    def _schedule_nack(
        self, time_s: float, tiebreak: int, packet: Packet, retries_left: int
    ) -> None:
        key = (packet.stream_id, packet.frame_sequence)
        self._pending_nacks[key] = self._pending_nacks.get(key, 0) + 1
        heapq.heappush(self._events, (time_s, tiebreak, "nack", (packet, retries_left)))

    def process_until(self, now: float) -> None:
        """Run all channel events with timestamps up to ``now``."""
        self._clock = max(self._clock, now)
        while self._events and self._events[0][0] <= now:
            time_s, _, kind, payload = heapq.heappop(self._events)
            if kind == "offer":
                self._handle_offer(time_s, *payload)  # type: ignore[misc]
            elif kind == "offer_batch":
                self._handle_offer_batch(time_s, payload)  # type: ignore[arg-type]
            elif kind == "feedback":
                self._handle_feedback(time_s, payload)  # type: ignore[arg-type]
            elif kind == "feedback_batch":
                self._drain_feedback_run(payload, now)  # type: ignore[arg-type]
            elif kind == "nack":
                self._handle_nack(time_s, *payload)  # type: ignore[misc]

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------

    def _packet_from_batch(self, batch: _FrameBatch, index: int, send_time: float) -> Packet:
        return Packet(
            sequence=int(batch.sequences[index]),
            stream_id=batch.stream_id,
            frame_sequence=batch.frame_sequence,
            fragment=int(batch.fragments[index]),
            num_fragments=batch.num_fragments,
            size_bytes=int(batch.sizes[index]),
            send_time_s=send_time,
        )

    def _handle_offer_batch(self, time_s: float, batch: _FrameBatch) -> None:
        """Offer a whole frame burst to the link as one vectorized call.

        Reserves one tiebreak per packet up front: packet ``i``'s
        follow-up event (feedback if delivered, NACK if lost) carries
        tiebreak ``base + i``, reproducing the scalar path's per-packet
        allocation order for events landing at equal times.
        """
        n = int(batch.sizes.shape[0])
        self.batch_counters.batch(n)
        base_tiebreak = self._tiebreak
        self._tiebreak += n
        packets = None
        if self.link.fault_hook is not None:
            packets = [self._packet_from_batch(batch, i, time_s) for i in range(n)]
        arrivals_arr, status_arr = self.link.send_batch(time_s, batch.sizes, packets)
        # Python floats/ints from here on, so everything downstream is
        # type- and bit-identical to the scalar path.
        arrivals = arrivals_arr.tolist()
        delivered = (status_arr == STATUS_DELIVERED).tolist()
        config = self.config
        n_media = batch.n_media
        dropped = n - sum(delivered)
        if dropped:
            self._record_loss_run(time_s, lost=dropped, total=dropped)
        lost_media: dict[int, Packet] = {}
        if dropped:
            nack_time = (
                time_s
                + self.link.config.propagation_delay_s
                + config.loss_detection_grace_s
                + config.reverse_delay_s
            )
            for i in range(n_media):
                if delivered[i]:
                    continue
                packet = packets[i] if packets else self._packet_from_batch(batch, i, time_s)
                lost_media[i] = packet
                self._schedule_nack(nack_time, base_tiebreak + i, packet, batch.retries)
        arrived = [i for i in range(n_media) if delivered[i]]
        if arrived:
            completed_at = self._assemblers[batch.stream_id].on_fragment_run(
                batch.frame_sequence,
                batch.num_fragments,
                [int(batch.fragments[i]) for i in arrived],
                [arrivals[i] for i in arrived],
            )
            if completed_at is not None:
                self._append_delivery(
                    batch.stream_id, batch.frame_sequence, completed_at, time_s
                )
        if batch.group_sizes:
            self._fec_repair_batch(batch, delivered, arrivals, lost_media, time_s)
        feedback = [i for i in range(n) if delivered[i]]
        if feedback:
            reverse = config.reverse_delay_s
            run = _FeedbackRun(
                send_time=time_s,
                times=[arrivals[i] + reverse for i in feedback],
                arrivals=[arrivals[i] for i in feedback],
                sizes=[int(batch.sizes[i]) for i in feedback],
                tiebreaks=[base_tiebreak + i for i in feedback],
            )
            heapq.heappush(self._events, (run.times[0], run.tiebreaks[0], "feedback_batch", run))

    def _fec_repair_batch(
        self,
        batch: _FrameBatch,
        delivered: list[bool],
        arrivals: list[float],
        lost_media: dict[int, Packet],
        time_s: float,
    ) -> None:
        """Resolve FEC groups inline: a batch decides every group's
        outcome at once (groups never span frames), so repairs need no
        retained tracker state."""
        start = 0
        for group_index, group_total in enumerate(batch.group_sizes):
            parity_index = batch.n_media + group_index
            lost_in_group = [
                i for i in range(start, start + group_total) if not delivered[i]
            ]
            start += group_total
            if not self._fec_tracker.account_group(
                group_total, len(lost_in_group), delivered[parity_index]
            ):
                continue
            packet = lost_media[lost_in_group[0]]
            key = (batch.stream_id, batch.frame_sequence)
            self._fec_repaired.add(packet.sequence)
            self._fec_repaired_frames.setdefault(key, []).append(packet.sequence)
            parity_arrival = arrivals[parity_index]
            completed = self._assemblers[batch.stream_id].on_packet(packet, parity_arrival)
            if completed is not None:
                self._append_delivery(batch.stream_id, completed, parity_arrival, time_s)

    def _drain_feedback_run(self, run: _FeedbackRun, now: float) -> None:
        """Process as many feedback entries as can fire before the next
        heap event, then park the remainder back on the heap under its
        own (time, tiebreak) so scalar event interleaving is preserved."""
        events = self._events
        times = run.times
        tiebreaks = run.tiebreaks
        n = len(times)
        i = run.index
        j = i
        if events:
            top_time, top_tiebreak = events[0][0], events[0][1]
            while (
                j < n
                and times[j] <= now
                and (times[j], tiebreaks[j]) < (top_time, top_tiebreak)
            ):
                j += 1
        else:
            while j < n and times[j] <= now:
                j += 1
        self._process_feedback_chunk(run, i, j)
        run.index = j
        if j < n:
            heapq.heappush(events, (times[j], tiebreaks[j], "feedback_batch", run))

    def _process_feedback_chunk(self, run: _FeedbackRun, i: int, j: int) -> None:
        self.gcc.on_feedback_batch(run.send_time, run.arrivals[i:j], run.sizes[i:j])
        smoothing = self.config.rtt_smoothing
        srtt = self._srtt
        send_time = run.send_time
        for feedback_time in run.times[i:j]:
            self._record_loss_run(feedback_time, lost=0, total=1)
            self.gcc.on_loss_report(self._loss_fraction(feedback_time))
            sample = feedback_time - send_time
            if srtt is None:
                srtt = sample
            else:
                srtt += smoothing * (sample - srtt)
        self._srtt = srtt

    # ------------------------------------------------------------------
    # Scalar path (also: retransmissions and markers under fast path)
    # ------------------------------------------------------------------

    def _handle_offer(self, time_s: float, packet: Packet, retries_left: int) -> None:
        self.batch_counters.scalar(1)
        packet.send_time_s = time_s
        is_parity = packet.fragment < 0
        arrival = self.link.send(packet)
        delivered = arrival is not None
        self._fec_account(
            packet, delivered=delivered, event_time=arrival if delivered else time_s
        )
        if not delivered:
            self._record_loss_event(time_s, delivered=False)
            if is_parity:
                return  # parity is best-effort; never NACKed
            detection = time_s + self.link.config.propagation_delay_s + self.config.loss_detection_grace_s
            nack_arrival = detection + self.config.reverse_delay_s
            self._schedule_nack(nack_arrival, self._next_tiebreak(), packet, retries_left)
            return
        if not is_parity:
            self._deliver_media(packet, arrival)
        self._schedule(arrival + self.config.reverse_delay_s, "feedback", packet)

    def _deliver_media(self, packet: Packet, arrival: float) -> None:
        completed = self._assemblers[packet.stream_id].on_packet(packet, arrival)
        if completed is not None:
            self._append_delivery(packet.stream_id, completed, arrival, packet.send_time_s)

    def _append_delivery(
        self, stream_id: int, frame_sequence: int, completion: float, fallback_send_time: float
    ) -> None:
        key = (stream_id, frame_sequence)
        send_time = self._frame_send_times.pop(key, fallback_send_time)
        self._deliveries.append(
            FrameDelivery(
                stream_id=stream_id,
                frame_sequence=frame_sequence,
                send_time_s=send_time,
                completion_time_s=completion,
            )
        )

    def _fec_account(self, packet: Packet, delivered: bool, event_time: float) -> None:
        """Feed FEC bookkeeping; deliver any packet a parity repairs."""
        group = self._packet_fec_group.get(packet.sequence)
        if group is None:
            return
        group_id, media_total = group
        if packet.fragment < 0:
            recovered = self._fec_tracker.on_parity(group_id, media_total, delivered)
        else:
            recovered = self._fec_tracker.on_media(group_id, media_total, delivered, packet)
        if recovered is not None:
            self._fec_repaired.add(recovered.sequence)
            self._fec_repaired_frames.setdefault(
                (recovered.stream_id, recovered.frame_sequence), []
            ).append(recovered.sequence)
            self._deliver_media(recovered, event_time)
        if packet.fragment < 0:
            # The parity is the group's last offer: every member is now
            # accounted, so the per-sequence map entries are dead.
            for sequence in self._fec_group_members.pop(group_id, ()):
                self._packet_fec_group.pop(sequence, None)
            self._fec_tracker.release(group_id)

    def _handle_feedback(self, time_s: float, packet: Packet) -> None:
        assert packet.arrival_time_s is not None
        self.gcc.on_packet_feedback(packet.send_time_s, packet.arrival_time_s, packet.size_bytes)
        self._record_loss_event(time_s, delivered=True)
        self.gcc.on_loss_report(self._loss_fraction(time_s))
        sample = time_s - packet.send_time_s
        if self._srtt is None:
            self._srtt = sample
        else:
            self._srtt += self.config.rtt_smoothing * (sample - self._srtt)

    def _handle_nack(self, time_s: float, packet: Packet, retries_left: int) -> None:
        key = (packet.stream_id, packet.frame_sequence)
        pending = self._pending_nacks.get(key, 1) - 1
        if pending > 0:
            self._pending_nacks[key] = pending
        else:
            self._pending_nacks.pop(key, None)
        self._nack_decision(time_s, packet, retries_left, key)
        if key in self._released and not self._pending_nacks.get(key):
            # The frame was released while chains were in flight and the
            # last chain just drained (the decision above may have
            # re-armed it via a retransmission) -- reclaim its markers.
            self._released.discard(key)
            self._release_key(key)

    def _nack_decision(
        self, time_s: float, packet: Packet, retries_left: int, key: tuple[int, int]
    ) -> None:
        if packet.sequence in self._fec_repaired:
            return  # FEC already repaired this loss; no retransmission
        if key in self._abandoned:
            # The frame was already given up on (PLI raised); spending
            # link capacity retransmitting its other fragments is waste.
            return
        self.gcc.on_loss_report(self._loss_fraction(time_s))
        if retries_left <= 0:
            self.frames_lost.append(key)
            self._abandoned.add(key)
            self._frame_send_times.pop(key, None)
            self._assemblers[packet.stream_id].drop_frame(packet.frame_sequence)
            self._needs_keyframe[packet.stream_id] = True
            return
        retransmit = Packet(
            sequence=self._packet_sequence,
            stream_id=packet.stream_id,
            frame_sequence=packet.frame_sequence,
            fragment=packet.fragment,
            num_fragments=packet.num_fragments,
            size_bytes=packet.size_bytes,
            send_time_s=time_s,
            is_retransmit=True,
        )
        self._packet_sequence += 1
        self._schedule(time_s, "offer", (retransmit, retries_left - 1))

    def _record_loss_event(self, time_s: float, delivered: bool) -> None:
        self._record_loss_run(time_s, lost=0 if delivered else 1, total=1)

    def _record_loss_run(self, time_s: float, lost: int, total: int) -> None:
        self._loss_events.append((time_s, lost, total))
        self._loss_lost += lost
        self._loss_total += total
        cutoff = time_s - self.config.loss_window_s
        events = self._loss_events
        while events and events[0][0] < cutoff:
            _, run_lost, run_total = events.popleft()
            self._loss_lost -= run_lost
            self._loss_total -= run_total

    def _loss_fraction(self, now: float) -> float:
        if not self._loss_total:
            return 0.0
        return self._loss_lost / self._loss_total
