"""WebRTC-like media channel: packetization + congestion control + recovery.

Ties the transport pieces together the way the paper's stack does
(section 3.3 background, appendix A.1):

- frames are fragmented into RTP-like packets and offered to the
  emulated bottleneck link in send-time order;
- per-packet timing feedback returns over the reverse path and drives
  the GCC bandwidth estimate and a smoothed application-level RTT
  (halved by LiVo to predict the one-way delay, section 3.4);
- lost packets trigger NACK retransmissions; when retries are exhausted
  the frame is abandoned and a PLI-style keyframe request is raised
  ("we enable several WebRTC features, including negative
  acknowledgments, Picture Loss Indication (PLI)...", appendix A.1).

Everything is event-driven on simulated time: ``process_until(now)``
advances the channel clock and makes completed frames visible.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass

from repro.transport.fec import FECGroupTracker, parity_packet_for
from repro.transport.gcc import GCCConfig, GoogleCongestionControl
from repro.transport.link import EmulatedLink
from repro.transport.packet import DEFAULT_MTU, Packet
from repro.transport.rtp import RTP_HEADER_BYTES, FrameAssembler, packetize

__all__ = ["WebRTCConfig", "FrameDelivery", "WebRTCChannel"]


@dataclass(frozen=True)
class WebRTCConfig:
    """Channel parameters.

    ``fec_group_size`` enables XOR-parity forward error correction:
    every group of that many media packets is followed by one parity
    packet, and single losses per group are repaired locally instead of
    waiting a NACK round trip (see :mod:`repro.transport.fec`).  None
    disables FEC (the paper's configuration).
    """

    mtu: int = DEFAULT_MTU
    reverse_delay_s: float = 0.02
    nack_retries: int = 3
    loss_detection_grace_s: float = 0.02
    rtt_smoothing: float = 0.125  # classic SRTT EWMA gain
    loss_window_s: float = 1.0
    fec_group_size: int | None = None


@dataclass(frozen=True)
class FrameDelivery:
    """A frame that fully arrived at the receiver."""

    stream_id: int
    frame_sequence: int
    send_time_s: float
    completion_time_s: float


class WebRTCChannel:
    """One-direction media channel over an emulated link."""

    def __init__(
        self,
        link: EmulatedLink,
        config: WebRTCConfig | None = None,
        gcc_config: GCCConfig | None = None,
        num_streams: int = 2,
    ) -> None:
        self.link = link
        self.config = config or WebRTCConfig()
        self.gcc = GoogleCongestionControl(gcc_config)
        self._assemblers = [FrameAssembler() for _ in range(num_streams)]
        self._events: list[tuple[float, int, str, object]] = []
        self._tiebreak = itertools.count()
        self._packet_sequence = 0
        self._frame_send_times: dict[tuple[int, int], float] = {}
        self._deliveries: list[FrameDelivery] = []
        self._needs_keyframe = [False] * num_streams
        self._srtt: float | None = None
        self._loss_events: deque[tuple[float, bool]] = deque()
        self.frames_lost: list[tuple[int, int]] = []
        self._abandoned: set[tuple[int, int]] = set()
        self.marker_frames: list[tuple[int, int]] = []
        self.bytes_sent_per_stream = [0] * num_streams
        self._clock = 0.0
        # FEC state (only touched when fec_group_size is set).
        self._fec_tracker = FECGroupTracker()
        self._fec_group_counter = 0
        self._packet_fec_group: dict[int, tuple[int, int]] = {}
        self._fec_repaired: set[int] = set()

    # ------------------------------------------------------------------
    # Sender API
    # ------------------------------------------------------------------

    def send_frame(self, stream_id: int, frame_sequence: int, size_bytes: int, now: float) -> None:
        """Offer one encoded frame for transmission at time ``now``.

        A zero-byte frame is legitimate -- an aggressively culled view
        can encode to (effectively) nothing -- and is carried as a
        single header-only marker packet so the receiver still observes
        the frame boundary instead of the sender crashing.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if size_bytes == 0:
            self._send_marker_frame(stream_id, frame_sequence, now)
            return
        packets = packetize(
            stream_id,
            frame_sequence,
            size_bytes,
            now,
            self._packet_sequence,
            mtu=self.config.mtu,
        )
        self._packet_sequence += len(packets)
        self._frame_send_times[(stream_id, frame_sequence)] = now
        self.bytes_sent_per_stream[stream_id] += sum(p.size_bytes for p in packets)
        for packet in packets:
            self._schedule(now, "offer", (packet, self.config.nack_retries))
        if self.config.fec_group_size:
            self._send_fec_parity(stream_id, packets, now)

    def _send_marker_frame(self, stream_id: int, frame_sequence: int, now: float) -> None:
        """Send a header-only marker for an empty frame (recorded)."""
        marker = Packet(
            sequence=self._packet_sequence,
            stream_id=stream_id,
            frame_sequence=frame_sequence,
            fragment=0,
            num_fragments=1,
            size_bytes=RTP_HEADER_BYTES,
            send_time_s=now,
        )
        self._packet_sequence += 1
        self._frame_send_times[(stream_id, frame_sequence)] = now
        self.bytes_sent_per_stream[stream_id] += marker.size_bytes
        self.marker_frames.append((stream_id, frame_sequence))
        self._schedule(now, "offer", (marker, self.config.nack_retries))

    def _send_fec_parity(self, stream_id: int, packets: list[Packet], now: float) -> None:
        """Group a frame's packets and append XOR parity packets."""
        group_size = self.config.fec_group_size
        assert group_size is not None
        for start in range(0, len(packets), group_size):
            group = packets[start : start + group_size]
            group_id = self._fec_group_counter
            self._fec_group_counter += 1
            for packet in group:
                self._packet_fec_group[packet.sequence] = (group_id, len(group))
            parity = parity_packet_for(group, self._packet_sequence)
            self._packet_sequence += 1
            self._packet_fec_group[parity.sequence] = (group_id, len(group))
            self.bytes_sent_per_stream[stream_id] += parity.size_bytes
            # Parity is best-effort: no NACK retries for it.
            self._schedule(now, "offer", (parity, 0))

    def target_rate_bps(self) -> float:
        """Current GCC bandwidth estimate (the encoder's rate input)."""
        return self.gcc.target_rate_bps()

    @property
    def rtt_s(self) -> float:
        """Smoothed application-level RTT estimate."""
        if self._srtt is None:
            return 2.0 * (self.link.config.propagation_delay_s + self.config.reverse_delay_s)
        return self._srtt

    @property
    def one_way_delay_estimate_s(self) -> float:
        """LiVo's Delta-t: half the smoothed RTT (section 3.4)."""
        return self.rtt_s / 2.0

    def needs_keyframe(self, stream_id: int) -> bool:
        """True when a PLI is pending for this stream (consumed on read)."""
        pending = self._needs_keyframe[stream_id]
        self._needs_keyframe[stream_id] = False
        return pending

    # ------------------------------------------------------------------
    # Receiver API
    # ------------------------------------------------------------------

    def frame_abandoned(self, stream_id: int, frame_sequence: int) -> bool:
        """Whether a frame's retransmissions were exhausted (PLI path)."""
        return (stream_id, frame_sequence) in self._abandoned

    def poll_deliveries(self, now: float) -> list[FrameDelivery]:
        """Advance the clock and return frames completed by ``now``."""
        self.process_until(now)
        ready = [d for d in self._deliveries if d.completion_time_s <= now]
        self._deliveries = [d for d in self._deliveries if d.completion_time_s > now]
        return ready

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------

    def _schedule(self, time_s: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time_s, next(self._tiebreak), kind, payload))

    def process_until(self, now: float) -> None:
        """Run all channel events with timestamps up to ``now``."""
        self._clock = max(self._clock, now)
        while self._events and self._events[0][0] <= now:
            time_s, _, kind, payload = heapq.heappop(self._events)
            if kind == "offer":
                self._handle_offer(time_s, *payload)  # type: ignore[misc]
            elif kind == "feedback":
                self._handle_feedback(time_s, payload)  # type: ignore[arg-type]
            elif kind == "nack":
                self._handle_nack(time_s, *payload)  # type: ignore[misc]

    def _handle_offer(self, time_s: float, packet: Packet, retries_left: int) -> None:
        packet.send_time_s = time_s
        is_parity = packet.fragment < 0
        arrival = self.link.send(packet)
        delivered = arrival is not None
        self._fec_account(
            packet, delivered=delivered, event_time=arrival if delivered else time_s
        )
        if not delivered:
            self._record_loss_event(time_s, delivered=False)
            if is_parity:
                return  # parity is best-effort; never NACKed
            detection = time_s + self.link.config.propagation_delay_s + self.config.loss_detection_grace_s
            nack_arrival = detection + self.config.reverse_delay_s
            self._schedule(nack_arrival, "nack", (packet, retries_left))
            return
        if not is_parity:
            self._deliver_media(packet, arrival)
        self._schedule(arrival + self.config.reverse_delay_s, "feedback", packet)

    def _deliver_media(self, packet: Packet, arrival: float) -> None:
        completed = self._assemblers[packet.stream_id].on_packet(packet, arrival)
        if completed is not None:
            key = (packet.stream_id, completed)
            self._deliveries.append(
                FrameDelivery(
                    stream_id=packet.stream_id,
                    frame_sequence=completed,
                    send_time_s=self._frame_send_times.get(key, packet.send_time_s),
                    completion_time_s=arrival,
                )
            )

    def _fec_account(self, packet: Packet, delivered: bool, event_time: float) -> None:
        """Feed FEC bookkeeping; deliver any packet a parity repairs."""
        group = self._packet_fec_group.get(packet.sequence)
        if group is None:
            return
        group_id, media_total = group
        if packet.fragment < 0:
            recovered = self._fec_tracker.on_parity(group_id, media_total, delivered)
        else:
            recovered = self._fec_tracker.on_media(group_id, media_total, delivered, packet)
        if recovered is not None:
            self._fec_repaired.add(recovered.sequence)
            self._deliver_media(recovered, event_time)

    def _handle_feedback(self, time_s: float, packet: Packet) -> None:
        assert packet.arrival_time_s is not None
        self.gcc.on_packet_feedback(packet.send_time_s, packet.arrival_time_s, packet.size_bytes)
        self._record_loss_event(time_s, delivered=True)
        self.gcc.on_loss_report(self._loss_fraction(time_s))
        sample = time_s - packet.send_time_s
        if self._srtt is None:
            self._srtt = sample
        else:
            self._srtt += self.config.rtt_smoothing * (sample - self._srtt)

    def _handle_nack(self, time_s: float, packet: Packet, retries_left: int) -> None:
        if packet.sequence in self._fec_repaired:
            return  # FEC already repaired this loss; no retransmission
        key = (packet.stream_id, packet.frame_sequence)
        if key in self._abandoned:
            # The frame was already given up on (PLI raised); spending
            # link capacity retransmitting its other fragments is waste.
            return
        self.gcc.on_loss_report(self._loss_fraction(time_s))
        if retries_left <= 0:
            self.frames_lost.append(key)
            self._abandoned.add(key)
            self._assemblers[packet.stream_id].drop_frame(packet.frame_sequence)
            self._needs_keyframe[packet.stream_id] = True
            return
        retransmit = Packet(
            sequence=self._packet_sequence,
            stream_id=packet.stream_id,
            frame_sequence=packet.frame_sequence,
            fragment=packet.fragment,
            num_fragments=packet.num_fragments,
            size_bytes=packet.size_bytes,
            send_time_s=time_s,
            is_retransmit=True,
        )
        self._packet_sequence += 1
        self._schedule(time_s, "offer", (retransmit, retries_left - 1))

    def _record_loss_event(self, time_s: float, delivered: bool) -> None:
        self._loss_events.append((time_s, delivered))
        cutoff = time_s - self.config.loss_window_s
        while self._loss_events and self._loss_events[0][0] < cutoff:
            self._loss_events.popleft()

    def _loss_fraction(self, now: float) -> float:
        if not self._loss_events:
            return 0.0
        lost = sum(1 for _, delivered in self._loss_events if not delivered)
        return lost / len(self._loss_events)
