"""RTP-like packetization: frames <-> MTU-sized packets.

The sender fragments each encoded frame into MTU-sized packets; the
receiver reassembles fragments and reports frames complete once every
fragment has arrived.  Missing fragments are what NACKs (and eventually
PLI) react to in the channel layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transport.packet import DEFAULT_MTU, Packet

__all__ = ["packetize", "FrameAssembler", "RTP_HEADER_BYTES"]

RTP_HEADER_BYTES = 12


def packetize(
    stream_id: int,
    frame_sequence: int,
    frame_bytes: int,
    send_time_s: float,
    first_packet_sequence: int,
    mtu: int = DEFAULT_MTU,
) -> list[Packet]:
    """Fragment a frame of ``frame_bytes`` into RTP-like packets."""
    if frame_bytes <= 0:
        raise ValueError("frame_bytes must be positive")
    if mtu <= RTP_HEADER_BYTES:
        raise ValueError("mtu must exceed the RTP header size")
    payload_per_packet = mtu - RTP_HEADER_BYTES
    num_fragments = -(-frame_bytes // payload_per_packet)
    packets = []
    remaining = frame_bytes
    for fragment in range(num_fragments):
        payload = min(payload_per_packet, remaining)
        remaining -= payload
        packets.append(
            Packet(
                sequence=first_packet_sequence + fragment,
                stream_id=stream_id,
                frame_sequence=frame_sequence,
                fragment=fragment,
                num_fragments=num_fragments,
                size_bytes=payload + RTP_HEADER_BYTES,
                send_time_s=send_time_s,
            )
        )
    return packets


@dataclass
class _FrameState:
    num_fragments: int
    received: set[int] = field(default_factory=set)
    first_arrival_s: float | None = None
    last_arrival_s: float | None = None

    @property
    def complete(self) -> bool:
        return len(self.received) == self.num_fragments


class FrameAssembler:
    """Reassembles one stream's packets into complete frames."""

    def __init__(self) -> None:
        self._frames: dict[int, _FrameState] = {}
        self._completed: set[int] = set()

    def on_packet(self, packet: Packet, arrival_time_s: float) -> int | None:
        """Register an arrived packet.

        Returns the frame sequence if this packet completed a frame,
        else None.
        """
        state = self._frames.get(packet.frame_sequence)
        if state is None:
            state = _FrameState(num_fragments=packet.num_fragments)
            self._frames[packet.frame_sequence] = state
        if state.first_arrival_s is None:
            state.first_arrival_s = arrival_time_s
        state.last_arrival_s = arrival_time_s
        state.received.add(packet.fragment)
        if state.complete and packet.frame_sequence not in self._completed:
            self._completed.add(packet.frame_sequence)
            return packet.frame_sequence
        return None

    def on_fragment_run(
        self,
        frame_sequence: int,
        num_fragments: int,
        fragments: list[int],
        arrival_times_s: list[float],
    ) -> float | None:
        """Register a run of arrived fragments of one frame at once.

        Equivalent to :meth:`on_packet` per fragment, for the batched
        transport path where a frame's delivered fragments arrive as
        arrays (in arrival order).  Returns the completing arrival time
        if the run completed the frame, else None.
        """
        state = self._frames.get(frame_sequence)
        if state is None:
            state = _FrameState(num_fragments=num_fragments)
            self._frames[frame_sequence] = state
        if state.first_arrival_s is None:
            state.first_arrival_s = arrival_times_s[0]
        state.last_arrival_s = arrival_times_s[-1]
        state.received.update(fragments)
        if state.complete and frame_sequence not in self._completed:
            self._completed.add(frame_sequence)
            return state.last_arrival_s
        return None

    def missing_fragments(self, frame_sequence: int) -> list[int]:
        """Fragments of a frame not yet received (for NACK generation)."""
        state = self._frames.get(frame_sequence)
        if state is None:
            return []
        return [f for f in range(state.num_fragments) if f not in state.received]

    def frame_complete(self, frame_sequence: int) -> bool:
        """Whether all fragments of a frame have arrived."""
        return frame_sequence in self._completed

    def completion_time(self, frame_sequence: int) -> float | None:
        """Arrival time of the frame's last fragment, if complete."""
        state = self._frames.get(frame_sequence)
        if state is None or not state.complete:
            return None
        return state.last_arrival_s

    def drop_frame(self, frame_sequence: int) -> None:
        """Forget an incomplete frame (gave up; PLI path)."""
        self._frames.pop(frame_sequence, None)

    def release_frame(self, frame_sequence: int) -> None:
        """Forget all state for a resolved frame (memory reclamation).

        Unlike :meth:`drop_frame` this also clears the completed mark;
        callers use it once the application has consumed the frame and
        no late packets for it can still be useful.
        """
        self._frames.pop(frame_sequence, None)
        self._completed.discard(frame_sequence)
