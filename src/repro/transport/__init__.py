"""Transport substrate: WebRTC-like real-time transport over emulated links.

The paper streams over WebRTC with Google Congestion Control and
emulates bandwidth with Mahimahi.  This package provides the same
machinery as a discrete-time simulation:

- :mod:`repro.transport.traces` -- the two bandwidth traces (Table 4)
  as stochastic generators matched to the paper's statistics;
- :mod:`repro.transport.link` -- a trace-driven bottleneck link with a
  drop-tail queue, propagation delay, and random loss (Mahimahi's role);
- :mod:`repro.transport.gcc` -- a delay-gradient + loss congestion
  controller in the structure of GCC;
- :mod:`repro.transport.rtp` -- MTU packetization with loss detection;
- :mod:`repro.transport.jitter` -- the receiver's jitter buffer
  (100 ms target, appendix A.1);
- :mod:`repro.transport.channel` -- the WebRTC-like channel tying those
  together, with NACK/PLI-style recovery and an RTT estimator;
- :mod:`repro.transport.tcp` -- a reliable in-order byte stream (fluid
  model) used by the MeshReduce baseline;
- :mod:`repro.transport.downlink` -- per-receiver downlink registry for
  SFU fan-out (one emulated link per receiver).
"""

from repro.transport.channel import FrameDelivery, WebRTCChannel, WebRTCConfig
from repro.transport.downlink import DownlinkSend, DownlinkSet
from repro.transport.gcc import GoogleCongestionControl
from repro.transport.jitter import JitterBuffer
from repro.transport.link import EmulatedLink, LinkConfig
from repro.transport.packet import Packet
from repro.transport.tcp import ReliableByteStream
from repro.transport.traces import BandwidthTrace, trace_1, trace_2

__all__ = [
    "DownlinkSend",
    "DownlinkSet",
    "FrameDelivery",
    "WebRTCChannel",
    "WebRTCConfig",
    "GoogleCongestionControl",
    "JitterBuffer",
    "EmulatedLink",
    "LinkConfig",
    "Packet",
    "ReliableByteStream",
    "BandwidthTrace",
    "trace_1",
    "trace_2",
]
