"""Bandwidth traces (Table 4).

The paper replays two real-world WiFi traces, scaled to broadband-class
capacity: *trace-1* (home WiFi, scaled 10x, mean ~217 Mbps) and
*trace-2* (mall mobility, scaled 15x, mean ~89 Mbps).  The raw captures
aren't redistributable, so we generate traces from a mean-reverting
AR(1) process in log space (bursty, temporally correlated -- the
qualitative character of WiFi throughput), then affinely calibrate each
trace so its mean / min / max / p10 / p90 match Table 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["BandwidthTrace", "TraceStats", "trace_1", "trace_2", "constant_trace"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics in Mbps, as reported in Table 4."""

    mean: float
    max: float
    min: float
    p90: float
    p10: float


class BandwidthTrace:
    """Time series of link capacity, sampled on a uniform grid.

    Besides point lookups (:meth:`capacity_at`), the trace maintains a
    cumulative bits-served prefix integral ``C(t)`` over the looping
    capacity schedule.  ``C`` is piecewise linear and nondecreasing, so
    "when does the bottleneck finish serving ``b`` bits started at
    ``t``" is ``C^-1(C(t) + b)`` -- one ``searchsorted`` instead of an
    O(intervals) walk, and vectorizable over whole packet batches.
    Zero-rate intervals (outages) are plateaus of ``C``: the inverse
    lookup skips them without iterating or dividing by zero.
    """

    def __init__(self, capacities_mbps: np.ndarray, interval_s: float = 1.0, name: str = "trace"):
        capacities = np.asarray(capacities_mbps, dtype=np.float64)
        if capacities.ndim != 1 or len(capacities) == 0:
            raise ValueError("capacities must be a non-empty 1D array")
        if np.any(capacities < 0):
            raise ValueError("capacities must be non-negative")
        if not np.any(capacities > 0):
            raise ValueError("capacities must include at least one positive interval")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.capacities_mbps = capacities
        self.interval_s = float(interval_s)
        self.name = name
        # Cumulative-capacity prefix integral over one loop of the trace.
        self._rates_bps = capacities * 1e6
        cum = np.empty(len(capacities) + 1, dtype=np.float64)
        cum[0] = 0.0
        np.cumsum(self._rates_bps * self.interval_s, out=cum[1:])
        self._cum_bits = cum
        self._cum_tail = cum[1:]  # cum[k+1]: bits served by the end of interval k
        self._loop_bits = float(cum[-1])
        self._loop_duration = len(capacities) * self.interval_s

    @property
    def duration_s(self) -> float:
        """Total trace duration."""
        return len(self.capacities_mbps) * self.interval_s

    def capacity_at(self, t: float) -> float:
        """Capacity (Mbps) at time ``t``; the trace loops past its end."""
        index = int(t / self.interval_s) % len(self.capacities_mbps)
        return float(self.capacities_mbps[index])

    def capacity_bps_at(self, t: float) -> float:
        """Capacity in bits per second at time ``t``."""
        return self.capacity_at(t) * 1e6

    def cumulative_bits_at(self, t: float) -> float:
        """``C(t)``: bits the looping trace serves on ``[0, t]``."""
        k_global = int(t / self.interval_s)
        loops, k = divmod(k_global, len(self.capacities_mbps))
        dt = t - k_global * self.interval_s
        return float(loops * self._loop_bits + self._cum_bits[k] + self._rates_bps[k] * dt)

    def time_for_cumulative(self, target_bits: float) -> float:
        """``C^-1``: earliest time by which ``target_bits`` are served.

        On a plateau (zero-rate span) the earliest such time is the
        plateau's start, which is what a fluid FIFO queue wants: the
        packet finished transmitting when its last bit was served, not
        when capacity next returns.
        """
        loops = float(math.floor(target_bits / self._loop_bits))
        rem = target_bits - loops * self._loop_bits
        k = int(np.searchsorted(self._cum_tail, rem, side="left"))
        if k >= len(self.capacities_mbps):
            k = len(self.capacities_mbps) - 1
        rate = float(self._rates_bps[k])
        delta = rem - float(self._cum_bits[k])
        within = delta / rate if rate > 0.0 else 0.0
        return (loops * self._loop_duration + k * self.interval_s) + within

    def times_for_cumulative(self, target_bits: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`time_for_cumulative`.

        Operation-for-operation identical arithmetic to the scalar
        version, so batched and per-packet callers get bit-identical
        finish times.
        """
        targets = np.asarray(target_bits, dtype=np.float64)
        loops = np.floor(targets / self._loop_bits)
        rem = targets - loops * self._loop_bits
        k = np.searchsorted(self._cum_tail, rem, side="left")
        np.minimum(k, len(self.capacities_mbps) - 1, out=k)
        rates = self._rates_bps[k]
        delta = rem - self._cum_bits[k]
        within = np.divide(
            delta, rates, out=np.zeros_like(delta), where=rates > 0.0
        )
        return (loops * self._loop_duration + k * self.interval_s) + within

    def stats(self) -> TraceStats:
        """Table 4-style summary statistics."""
        c = self.capacities_mbps
        return TraceStats(
            mean=float(c.mean()),
            max=float(c.max()),
            min=float(c.min()),
            p90=float(np.percentile(c, 90)),
            p10=float(np.percentile(c, 10)),
        )

    def scaled(self, factor: float) -> "BandwidthTrace":
        """Trace with every sample multiplied by ``factor`` (paper's 10x/15x)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return BandwidthTrace(
            self.capacities_mbps * factor, self.interval_s, f"{self.name}x{factor:g}"
        )


def _ar1_lognormal(
    num_samples: int, sigma: float, correlation: float, seed: int
) -> np.ndarray:
    """Mean-reverting AR(1) in log space, normalized to zero log-mean."""
    rng = np.random.default_rng(seed)
    noise_scale = sigma * np.sqrt(1.0 - correlation**2)
    log_values = np.empty(num_samples)
    log_values[0] = rng.normal(0.0, sigma)
    for index in range(1, num_samples):
        log_values[index] = correlation * log_values[index - 1] + rng.normal(0.0, noise_scale)
    return np.exp(log_values - log_values.mean())


def _calibrate(raw: np.ndarray, target: TraceStats) -> np.ndarray:
    """Quantile-map a raw shape series onto the target statistics.

    Rank-preserving piecewise-linear map anchored at the quantiles
    Table 4 reports (min, p10, p90, max, with the mean as the median
    anchor), followed by a small mean correction.  This keeps trace-2's
    deep lower tail (min 36 vs p10 80) that a plain affine map would
    flatten away.
    """
    anchors = np.percentile(raw, [0, 10, 50, 90, 100])
    if anchors[-1] - anchors[0] <= 0:
        raise ValueError("degenerate raw trace")
    # Strictly increasing anchor guard for np.interp.
    for index in range(1, len(anchors)):
        anchors[index] = max(anchors[index], anchors[index - 1] + 1e-9)
    values = np.array([target.min, target.p10, target.mean, target.p90, target.max])
    mapped = np.interp(raw, anchors, values)
    mapped = mapped + (target.mean - mapped.mean())
    return np.clip(mapped, target.min, target.max)


# Table 4 of the paper (already including the 10x / 15x scaling).
TRACE_1_STATS = TraceStats(mean=216.90, max=262.19, min=151.91, p90=234.41, p10=191.52)
TRACE_2_STATS = TraceStats(mean=89.20, max=106.37, min=36.35, p90=98.09, p10=80.52)


def trace_1(duration_s: float = 300.0, interval_s: float = 0.5, seed: int = 1) -> BandwidthTrace:
    """Home-WiFi-like trace, scaled: mean ~217 Mbps (Table 4, trace-1).

    Stationary environment: mild variability, strong correlation.
    """
    num_samples = max(2, int(round(duration_s / interval_s)))
    raw = _ar1_lognormal(num_samples, sigma=0.10, correlation=0.95, seed=seed)
    return BandwidthTrace(_calibrate(raw, TRACE_1_STATS), interval_s, "trace-1")


def trace_2(duration_s: float = 300.0, interval_s: float = 0.5, seed: int = 2) -> BandwidthTrace:
    """Mall-mobility-like trace, scaled: mean ~89 Mbps (Table 4, trace-2).

    Mobile environment: deeper fades, weaker correlation, occasional
    drops toward the 36 Mbps floor.
    """
    num_samples = max(2, int(round(duration_s / interval_s)))
    raw = _ar1_lognormal(num_samples, sigma=0.35, correlation=0.85, seed=seed)
    # Inject occasional deep fades (walking behind obstacles).
    rng = np.random.default_rng(seed + 1000)
    fade_mask = rng.random(num_samples) < 0.02
    raw = np.where(fade_mask, raw * 0.35, raw)
    return BandwidthTrace(_calibrate(raw, TRACE_2_STATS), interval_s, "trace-2")


def constant_trace(mbps: float, duration_s: float = 300.0) -> BandwidthTrace:
    """Fixed-capacity trace, for controlled experiments (e.g. Fig. 18)."""
    num_samples = max(2, int(duration_s))
    return BandwidthTrace(np.full(num_samples, mbps), 1.0, f"constant-{mbps:g}")
