"""Forward error correction: XOR parity across packet groups.

The paper lists robustness to packet loss as future work and leans on
NACK/PLI in the meantime (appendix A.1); WebRTC deployments commonly
add FEC (e.g. flexfec, or the RL-tuned R-FEC the paper cites).  This
module implements the classic single-parity scheme: every ``group_size``
media packets are followed by one XOR parity packet, letting the
receiver repair any single loss per group without a retransmission
round trip -- trading ~1/group_size bandwidth overhead for latency.

The simulation tracks packet *accounting* (sizes, sequence numbers,
which losses are repairable), not payload bytes; that is all the
transport layer's behaviour depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transport.packet import Packet

__all__ = ["FECEncoder", "FECGroupTracker", "parity_packet_for"]


def parity_packet_for(group: list[Packet], sequence: int) -> Packet:
    """Build the parity packet protecting a group of media packets.

    Its size is the maximum packet size in the group (XOR of padded
    payloads), attributed to the stream/frame of the last packet.
    """
    if not group:
        raise ValueError("parity needs a non-empty group")
    last = group[-1]
    return Packet(
        sequence=sequence,
        stream_id=last.stream_id,
        frame_sequence=last.frame_sequence,
        fragment=-1,                      # parity marker
        num_fragments=last.num_fragments,
        size_bytes=max(p.size_bytes for p in group),
        send_time_s=last.send_time_s,
    )


class FECEncoder:
    """Groups outgoing media packets and emits parity packets."""

    def __init__(self, group_size: int = 5) -> None:
        if group_size < 2:
            raise ValueError("group_size must be at least 2")
        self.group_size = group_size
        self._pending: list[Packet] = []
        self.parity_sent = 0

    def add(self, packet: Packet, next_sequence: int) -> Packet | None:
        """Account one media packet; returns a parity packet when the
        group completes."""
        self._pending.append(packet)
        if len(self._pending) < self.group_size:
            return None
        parity = parity_packet_for(self._pending, next_sequence)
        self._pending = []
        self.parity_sent += 1
        return parity

    def flush(self, next_sequence: int) -> Packet | None:
        """Emit parity for a partial trailing group (end of burst)."""
        if not self._pending:
            return None
        parity = parity_packet_for(self._pending, next_sequence)
        self._pending = []
        self.parity_sent += 1
        return parity

    @property
    def overhead_fraction(self) -> float:
        """Nominal bandwidth overhead of the scheme."""
        return 1.0 / self.group_size


@dataclass
class _GroupState:
    media_total: int
    media_received: int = 0
    parity_received: bool = False
    lost_packets: list[Packet] = field(default_factory=list)


class FECGroupTracker:
    """Receiver-side bookkeeping: which losses are parity-repairable.

    A group with exactly one lost media packet *and* a received parity
    packet is repairable; the tracker reports the repaired packets so
    the channel can cancel their NACKs.
    """

    def __init__(self) -> None:
        self._groups: dict[int, _GroupState] = {}
        self.repaired = 0

    def _group(self, group_id: int, media_total: int) -> _GroupState:
        state = self._groups.get(group_id)
        if state is None:
            state = _GroupState(media_total=media_total)
            self._groups[group_id] = state
        return state

    def on_media(self, group_id: int, media_total: int, delivered: bool,
                 packet: Packet) -> Packet | None:
        """Account a media packet outcome; returns a packet recovered by
        an already-received parity, if this loss made recovery possible.
        """
        state = self._group(group_id, media_total)
        if delivered:
            state.media_received += 1
        else:
            state.lost_packets.append(packet)
        return self._try_repair(state)

    def on_parity(self, group_id: int, media_total: int, delivered: bool) -> Packet | None:
        """Account the group's parity packet; may enable a repair."""
        state = self._group(group_id, media_total)
        if delivered:
            state.parity_received = True
        return self._try_repair(state)

    def account_group(
        self, media_total: int, lost_media: int, parity_delivered: bool
    ) -> bool:
        """Account a whole group's outcomes at once (batched path).

        When a frame's packets are simulated as one batch every group's
        outcome is known in one shot, so no per-group state needs to be
        retained; returns True iff the single loss is parity-repairable.
        """
        if parity_delivered and lost_media == 1 and media_total >= 1:
            self.repaired += 1
            return True
        return False

    def release(self, group_id: int) -> None:
        """Forget a fully-accounted group (memory reclamation)."""
        self._groups.pop(group_id, None)

    def _try_repair(self, state: _GroupState) -> Packet | None:
        if (
            state.parity_received
            and len(state.lost_packets) == 1
            and state.media_received == state.media_total - 1
        ):
            self.repaired += 1
            repaired = state.lost_packets.pop()
            state.media_received += 1
            return repaired
        return None
