"""Google Congestion Control (GCC), simplified to its published structure.

Carlucci et al. (MMSys'16) describe GCC as two coupled controllers:

- a **delay-based** controller estimating the one-way delay *gradient*
  between consecutive *packet groups* (frames / send bursts).  Measuring
  between groups rather than packets filters out the self-inflicted
  intra-burst queueing of a frame's own packets.  A threshold on the
  smoothed gradient classifies the network as underused / normal /
  overused, driving an Increase / Hold / Decrease state machine whose
  decrease target is a fraction of the measured receive rate;
- a **loss-based** controller: cut on >10 percent loss, grow on
  <2 percent.  It acts as a cap; with no loss it stays out of the way.

The sender's target rate is the minimum of the two.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["GoogleCongestionControl", "GCCConfig"]


@dataclass(frozen=True)
class GCCConfig:
    """GCC tuning constants (values follow the published defaults)."""

    initial_rate_bps: float = 10e6
    min_rate_bps: float = 1e6
    max_rate_bps: float = 500e6
    increase_factor: float = 1.05      # multiplicative increase per group
    decrease_factor: float = 0.85      # beta in the paper
    gradient_threshold_s: float = 0.002  # overuse threshold on group delay gradient
    gradient_smoothing: float = 0.5    # EMA on the raw gradient
    loss_decrease_threshold: float = 0.10
    loss_increase_threshold: float = 0.02
    receive_window_s: float = 1.0


@dataclass
class _Group:
    send_time_s: float
    last_arrival_s: float


class GoogleCongestionControl:
    """Delay-gradient + loss congestion controller."""

    def __init__(self, config: GCCConfig | None = None) -> None:
        self.config = config or GCCConfig()
        self._delay_rate = self.config.initial_rate_bps
        # The loss controller is a cap: it starts wide open and only
        # clamps down when losses are reported.
        self._loss_rate_bps = self.config.max_rate_bps
        self._smoothed_gradient = 0.0
        self._state = "increase"
        self._previous_group: _Group | None = None
        self._current_group: _Group | None = None
        self._recent_arrivals: deque[tuple[float, int]] = deque()
        # Running byte total of _recent_arrivals, so the receive-rate
        # estimate is O(1) instead of an O(window) re-sum per group.
        self._recent_bytes = 0

    @property
    def state(self) -> str:
        """Current delay-controller state: increase / hold / decrease."""
        return self._state

    def on_packet_feedback(self, send_time_s: float, arrival_time_s: float, size_bytes: int) -> None:
        """Fold one delivered packet's timing into the delay controller.

        Packets sharing a send time form one group (a frame's burst).
        """
        self._recent_arrivals.append((arrival_time_s, size_bytes))
        self._recent_bytes += size_bytes
        cutoff = arrival_time_s - self.config.receive_window_s
        while self._recent_arrivals and self._recent_arrivals[0][0] < cutoff:
            _, dropped_size = self._recent_arrivals.popleft()
            self._recent_bytes -= dropped_size

        if self._current_group is None:
            self._current_group = _Group(send_time_s, arrival_time_s)
            return
        if send_time_s <= self._current_group.send_time_s + 1e-9:
            # Same burst: extend its last-arrival time.
            self._current_group.last_arrival_s = max(
                self._current_group.last_arrival_s, arrival_time_s
            )
            return

        # New group begins: the previous group is now complete.
        if self._previous_group is not None:
            completed = self._current_group
            inter_departure = completed.send_time_s - self._previous_group.send_time_s
            inter_arrival = completed.last_arrival_s - self._previous_group.last_arrival_s
            self._update_gradient(inter_arrival - inter_departure, completed.last_arrival_s)
        self._previous_group = self._current_group
        self._current_group = _Group(send_time_s, arrival_time_s)

    def on_feedback_batch(
        self,
        send_time_s: float,
        arrival_times_s: list[float],
        sizes_bytes: list[int],
    ) -> None:
        """Fold a run of delivered packets sharing one send time.

        Equivalent to calling :meth:`on_packet_feedback` once per entry
        (arrivals must be nondecreasing -- FIFO link order).  Because
        every entry belongs to the same packet group, only the first can
        close the previous group and move the state machine; the rest
        just extend the current group and the receive-rate window, which
        batches to one ``deque.extend`` and one prune.
        """
        self.on_packet_feedback(send_time_s, arrival_times_s[0], sizes_bytes[0])
        if len(arrival_times_s) == 1:
            return
        recent = self._recent_arrivals
        recent.extend(zip(arrival_times_s[1:], sizes_bytes[1:]))
        self._recent_bytes += sum(sizes_bytes[1:])
        last_arrival = arrival_times_s[-1]
        cutoff = last_arrival - self.config.receive_window_s
        while recent and recent[0][0] < cutoff:
            _, dropped_size = recent.popleft()
            self._recent_bytes -= dropped_size
        group = self._current_group
        if last_arrival > group.last_arrival_s:
            group.last_arrival_s = last_arrival

    def _update_gradient(self, gradient_sample: float, now: float) -> None:
        self._smoothed_gradient += self.config.gradient_smoothing * (
            gradient_sample - self._smoothed_gradient
        )
        threshold = self.config.gradient_threshold_s
        if self._smoothed_gradient > threshold:
            self._state = "decrease"
            receive_rate = self._receive_rate_bps(now)
            if receive_rate > 0:
                self._delay_rate = max(
                    self.config.min_rate_bps,
                    self.config.decrease_factor * receive_rate,
                )
        elif self._smoothed_gradient < -threshold:
            self._state = "hold"
        else:
            self._state = "increase"
            self._delay_rate = min(
                self.config.max_rate_bps,
                self._delay_rate * self.config.increase_factor,
            )

    def _receive_rate_bps(self, now: float) -> float:
        if not self._recent_arrivals:
            return 0.0
        window_start = self._recent_arrivals[0][0]
        window = max(now - window_start, 0.05)
        return self._recent_bytes * 8.0 / window

    def on_loss_report(self, loss_fraction: float) -> None:
        """Fold a periodic loss report into the loss-based controller."""
        if not 0.0 <= loss_fraction <= 1.0:
            raise ValueError("loss_fraction must be in [0, 1]")
        if loss_fraction > self.config.loss_decrease_threshold:
            # Cut from the current effective target, not from the cap's
            # idle value, so heavy loss bites immediately.
            base = min(self._loss_rate_bps, self._delay_rate)
            self._loss_rate_bps = max(
                base * (1.0 - 0.5 * loss_fraction),
                self.config.min_rate_bps,
            )
        elif loss_fraction < self.config.loss_increase_threshold:
            self._loss_rate_bps = min(
                self._loss_rate_bps * self.config.increase_factor,
                self.config.max_rate_bps,
            )

    def target_rate_bps(self) -> float:
        """The sender's pacing/encoding target: min of the two controllers."""
        return max(self.config.min_rate_bps, min(self._delay_rate, self._loss_rate_bps))
