"""Reliable in-order byte stream (the MeshReduce baseline's transport).

MeshReduce "transmits over 2 TCP socket connections" (paper section
4.1).  For the metrics the evaluation needs -- when does each frame's
last byte arrive, and what throughput was achieved -- a fluid model of a
saturating reliable stream is sufficient: the bottleneck serves the
backlog at the trace capacity, losses surface as extra serving time
rather than drops, and frames are delivered strictly in order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.traces import BandwidthTrace

__all__ = ["ReliableByteStream", "StreamDelivery"]


@dataclass(frozen=True)
class StreamDelivery:
    """Delivery record for one application message (frame)."""

    message_id: int
    size_bytes: int
    send_time_s: float
    delivery_time_s: float


class ReliableByteStream:
    """Fluid TCP-like stream over a trace-driven bottleneck."""

    def __init__(
        self,
        trace: BandwidthTrace,
        propagation_delay_s: float = 0.02,
        efficiency: float = 0.9,
    ) -> None:
        """``efficiency`` discounts capacity for TCP dynamics (slow start,
        loss recovery, header overhead)."""
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        self.trace = trace
        self.propagation_delay_s = float(propagation_delay_s)
        self.efficiency = float(efficiency)
        self._backlog_clear_at = 0.0
        self.bytes_sent = 0
        self.deliveries: list[StreamDelivery] = []

    def _service_finish_time(self, start: float, size_bytes: int) -> float:
        # Scaling capacity by the efficiency factor is the same as
        # inflating the payload by 1/efficiency, which lets the shared
        # cumulative-capacity inverse (O(log intervals), zero-rate safe)
        # replace the old per-interval walk here too.
        target = self.trace.cumulative_bits_at(start) + size_bytes * 8.0 / self.efficiency
        return self.trace.time_for_cumulative(target)

    def send(self, message_id: int, size_bytes: int, now: float) -> StreamDelivery:
        """Append a message at time ``now``; returns its delivery record."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        start = max(now, self._backlog_clear_at)
        finish = self._service_finish_time(start, size_bytes)
        self._backlog_clear_at = finish
        self.bytes_sent += size_bytes
        delivery = StreamDelivery(
            message_id=message_id,
            size_bytes=size_bytes,
            send_time_s=now,
            delivery_time_s=finish + self.propagation_delay_s,
        )
        self.deliveries.append(delivery)
        return delivery

    def backlog_delay_at(self, now: float) -> float:
        """How far behind real time the stream currently is."""
        return max(0.0, self._backlog_clear_at - now)
