"""Incremental multi-view capture: the kernel-cached frame source.

Full capture re-samples every primitive and re-projects every point
through every camera each tick, yet most of a conference scene -- the
room shell, furniture, idle props -- never moves.  The cached source
splits capture along that line: the scene hands out per-primitive
:class:`~repro.capture.scene.SampleBatch` objects tagged static or
dynamic, and a per-camera
:class:`~repro.capture.renderer.ProjectionCache` projects each static
batch once per scene epoch, re-projecting only the dynamic batches
every frame.  The z-buffer splat runs over the concatenated splat
arrays exactly as a full render would, so frames are byte-identical to
:meth:`CaptureRig.capture` run on the same batch-mode point set
(asserted in tests/test_kernel_cache.py).

Process model: a source is cheap, process-local state.  Fork-process
capture workers inherit the parent's source by memory and warm their
own projection caches independently -- cached arrays are deterministic
functions of (scene seed, epoch, camera), so every worker converges on
identical values and parallel replays stay byte-identical to serial
(DESIGN.md section 9).
"""

from __future__ import annotations

import numpy as np

from repro.capture.renderer import ProjectionCache, render_views
from repro.capture.rgbd import MultiViewFrame, RGBDFrame
from repro.capture.rig import CaptureRig
from repro.capture.scene import Scene
from repro.perf.counters import CacheCounters

__all__ = ["CachedFrameSource"]


class CachedFrameSource:
    """Multi-view frame source with per-camera static-splat caching.

    Drop-in for the ``rig.capture(scene, sequence)`` call sites: same
    cameras, same clock, same output type.  Set ``cached=False`` to get
    the uncached reference path (full render of the identical batch-mode
    point set) -- the parity baseline used by tests and benchmarks.
    """

    def __init__(self, rig: CaptureRig, scene: Scene, cached: bool = True) -> None:
        self.rig = rig
        self.scene = scene
        self.cached = cached
        self._caches = [ProjectionCache(camera) for camera in rig.cameras]

    def capture(self, sequence: int) -> MultiViewFrame:
        """One synchronized multi-view capture at this sequence number."""
        timestamp = sequence * self.rig.frame_interval_s
        batches = self.scene.sample_batches(timestamp)
        if not self.cached:
            return self._full_render(batches, sequence, timestamp)
        views = [
            cache.render(batches, sequence=sequence, timestamp_s=timestamp)
            for cache in self._caches
        ]
        return MultiViewFrame(views, sequence=sequence, timestamp_s=timestamp)

    def capture_views(self, camera_indices: list[int], sequence: int) -> list[RGBDFrame]:
        """Render a subset of cameras for one tick (executor fan-out unit).

        Batch sampling is deterministic in ``(seed, epoch, t)``, so
        workers rendering disjoint camera chunks of the same tick all
        see identical surface points.
        """
        timestamp = sequence * self.rig.frame_interval_s
        batches = self.scene.sample_batches(timestamp)
        if not self.cached:
            full = self._full_render(batches, sequence, timestamp)
            return [full.views[index] for index in camera_indices]
        return [
            self._caches[index].render(
                batches, sequence=sequence, timestamp_s=timestamp
            )
            for index in camera_indices
        ]

    def _full_render(self, batches, sequence: int, timestamp: float) -> MultiViewFrame:
        points = np.concatenate([batch.points for batch in batches], axis=0)
        colors = np.concatenate([batch.colors for batch in batches], axis=0)
        return render_views(
            self.rig.cameras, points, colors, sequence=sequence, timestamp_s=timestamp
        )

    def counters(self) -> CacheCounters:
        """All per-camera projection counters merged into one line."""
        merged = CacheCounters("capture_projection")
        for cache in self._caches:
            merged.merge(cache.counters)
        return merged
