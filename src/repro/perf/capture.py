"""Incremental multi-view capture: the kernel-cached frame source.

Full capture re-samples every primitive and re-projects every point
through every camera each tick, yet most of a conference scene -- the
room shell, furniture, idle props -- never moves.  The cached source
splits capture along that line: the scene hands out per-primitive
:class:`~repro.capture.scene.SampleBatch` objects tagged static or
dynamic, and a per-camera
:class:`~repro.capture.renderer.ProjectionCache` projects each static
batch once per scene epoch, re-projecting only the dynamic batches
every frame.  The z-buffer splat runs over the concatenated splat
arrays exactly as a full render would, so frames are byte-identical to
:meth:`CaptureRig.capture` run on the same batch-mode point set
(asserted in tests/test_kernel_cache.py).

Process model: a source is cheap, process-local state.  Fork-process
capture workers inherit the parent's source by memory and warm their
own projection caches independently -- cached arrays are deterministic
functions of (scene seed, epoch, camera), so every worker converges on
identical values and parallel replays stay byte-identical to serial
(DESIGN.md section 9).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.capture.renderer import ProjectionCache, fill_holes_batch, render_views
from repro.capture.rgbd import MultiViewFrame, RGBDFrame
from repro.capture.rig import CaptureRig
from repro.capture.scene import Scene
from repro.perf.counters import CacheCounters

__all__ = ["CachedFrameSource"]


class CachedFrameSource:
    """Multi-view frame source with per-camera static-splat caching.

    Drop-in for the ``rig.capture(scene, sequence)`` call sites: same
    cameras, same clock, same output type.  Set ``cached=False`` to get
    the uncached reference path (full render of the identical batch-mode
    point set) -- the parity baseline used by tests and benchmarks.
    """

    def __init__(
        self,
        rig: CaptureRig,
        scene: Scene,
        cached: bool = True,
        batch_kernels: bool = True,
    ) -> None:
        self.rig = rig
        self.scene = scene
        self.cached = cached
        self.batch_kernels = batch_kernels
        self._caches = [ProjectionCache(camera) for camera in rig.cameras]

    def capture(self, sequence: int) -> MultiViewFrame:
        """One synchronized multi-view capture at this sequence number."""
        timestamp = sequence * self.rig.frame_interval_s
        batches = self.scene.sample_batches(timestamp)
        if not self.cached:
            return self._full_render(batches, sequence, timestamp)
        views = self._render_chunk(
            list(range(self.rig.num_cameras)), batches, sequence, timestamp
        )
        return MultiViewFrame(views, sequence=sequence, timestamp_s=timestamp)

    def capture_views(self, camera_indices: list[int], sequence: int) -> list[RGBDFrame]:
        """Render a subset of cameras for one tick (executor fan-out unit).

        Batch sampling is deterministic in ``(seed, epoch, t)``, so
        workers rendering disjoint camera chunks of the same tick all
        see identical surface points.
        """
        timestamp = sequence * self.rig.frame_interval_s
        batches = self.scene.sample_batches(timestamp)
        if not self.cached:
            full = self._full_render(batches, sequence, timestamp)
            return [full.views[index] for index in camera_indices]
        return self._render_chunk(list(camera_indices), batches, sequence, timestamp)

    def _render_chunk(
        self, camera_indices: list[int], batches, sequence: int, timestamp: float
    ) -> list[RGBDFrame]:
        """Render a set of cameras, hole-filling the whole set in one pass.

        With ``batch_kernels`` the per-camera z-buffers are produced
        unfilled (:meth:`ProjectionCache.render_arrays`) and the hole
        filling runs once over the stacked ``(N, H, W)`` images
        (:func:`fill_holes_batch`) -- bit-identical to filling each
        camera separately, grouped by image shape so mixed-resolution
        rigs still batch what they can.
        """
        if not self.batch_kernels or len(camera_indices) < 2:
            return [
                self._caches[index].render(
                    batches, sequence=sequence, timestamp_s=timestamp
                )
                for index in camera_indices
            ]
        frames: list[RGBDFrame | None] = [None] * len(camera_indices)
        pending: dict[tuple, list[tuple[int, np.ndarray, np.ndarray]]] = defaultdict(list)
        for slot, index in enumerate(camera_indices):
            depth, color, needs_fill = self._caches[index].render_arrays(batches)
            if needs_fill:
                pending[depth.shape].append((slot, depth, color))
            else:
                frames[slot] = RGBDFrame(
                    color,
                    depth,
                    camera_id=self._caches[index].camera.camera_id,
                    sequence=sequence,
                    timestamp_s=timestamp,
                )
        for members in pending.values():
            depths, colors = fill_holes_batch(
                np.stack([depth for _, depth, _ in members]),
                np.stack([color for _, _, color in members]),
            )
            for row, (slot, _, _) in enumerate(members):
                index = camera_indices[slot]
                frames[slot] = RGBDFrame(
                    colors[row],
                    depths[row],
                    camera_id=self._caches[index].camera.camera_id,
                    sequence=sequence,
                    timestamp_s=timestamp,
                )
        return frames

    def _full_render(self, batches, sequence: int, timestamp: float) -> MultiViewFrame:
        points = np.concatenate([batch.points for batch in batches], axis=0)
        colors = np.concatenate([batch.colors for batch in batches], axis=0)
        return render_views(
            self.rig.cameras, points, colors, sequence=sequence, timestamp_s=timestamp
        )

    def counters(self) -> CacheCounters:
        """All per-camera projection counters merged into one line."""
        merged = CacheCounters("capture_projection")
        for cache in self._caches:
            merged.merge(cache.counters)
        return merged
