"""Per-encoder scratch arena: memoized tables + reusable buffers.

The block codec rebuilds the same small tables on every plane of every
frame -- the frequency weight matrix, the step-scaled quantization
divisor, the motion offset list -- and re-allocates the motion-search
plane stack each call.  One arena per codec core memoizes the tables
(keyed by the parameters that define them) and hands out persistent
buffers for the search stack.  Every memoized array is identical in
value to what the uncached path computes, so bitstreams are
byte-identical with the arena on or off (asserted in
tests/test_kernel_cache.py); memoized tables are marked read-only so a
misbehaving caller cannot corrupt later frames.

Arenas are owned by a single ``_CodecCore`` and are not shared across
processes: fork-process encoder workers build their own (DESIGN.md
section 9).
"""

from __future__ import annotations

import numpy as np

from repro.codec.motion import search_offsets
from repro.codec.quant import qp_to_step, weight_matrix
from repro.perf.counters import CacheCounters

__all__ = ["ScratchArena"]


class ScratchArena:
    """Memoized codec tables and reusable work buffers for one stream."""

    def __init__(self) -> None:
        self._weights: dict[tuple[int, float], np.ndarray] = {}
        self._scales: dict[tuple[float, bytes | None], np.ndarray | float] = {}
        self._offsets: dict[int, list[tuple[int, int]]] = {}
        self._shift_buffers: dict[tuple[int, tuple[int, int]], np.ndarray] = {}
        self._block_buffers: dict[tuple[str, tuple[int, ...]], np.ndarray] = {}
        self.counters = CacheCounters("codec_scratch")

    # ------------------------------------------------------------------
    # Memoized tables
    # ------------------------------------------------------------------

    def weight_matrix(self, block_size: int, strength: float) -> np.ndarray:
        """Frequency-weight matrix, computed once per (size, strength)."""
        key = (block_size, strength)
        table = self._weights.get(key)
        if table is None:
            self.counters.miss()
            table = weight_matrix(block_size, strength)
            table.setflags(write=False)
            self._weights[key] = table
        else:
            self.counters.hit()
        return table

    def quant_scale(self, qp: float, weights: np.ndarray | None):
        """The quantization divisor ``step`` or ``step * weights``.

        Values are exactly what :func:`repro.codec.quant.quantize`
        computes internally, memoized per (qp, weights content).
        """
        key = (qp, None if weights is None else weights.tobytes())
        scale = self._scales.get(key)
        if scale is None:
            self.counters.miss()
            step = qp_to_step(qp)
            if weights is None:
                scale = step
            else:
                scale = step * weights
                scale.setflags(write=False)
            self._scales[key] = scale
        else:
            self.counters.hit()
        return scale

    def search_offsets(self, search_range: int) -> list[tuple[int, int]]:
        """Motion offset table, computed once per search range."""
        table = self._offsets.get(search_range)
        if table is None:
            self.counters.miss()
            table = search_offsets(search_range)
            self._offsets[search_range] = table
        else:
            self.counters.hit()
        return table

    # ------------------------------------------------------------------
    # Reusable buffers
    # ------------------------------------------------------------------

    def shift_buffer(self, num_offsets: int, shape: tuple[int, int]) -> np.ndarray:
        """Persistent ``(num_offsets, H, W)`` stack for shifted_planes.

        The stack is fully overwritten by every
        :func:`~repro.codec.motion.shifted_planes` call, so reuse cannot
        leak state between planes or frames.
        """
        key = (num_offsets, shape)
        buffer = self._shift_buffers.get(key)
        if buffer is None:
            self.counters.miss()
            buffer = np.empty((num_offsets, *shape), dtype=np.float64)
            self._shift_buffers[key] = buffer
        else:
            self.counters.hit()
        return buffer

    def block_buffer(self, tag: str, shape: tuple[int, ...]) -> np.ndarray:
        """Persistent float64 block-stack buffer, keyed by role + shape.

        Callers must fully overwrite the buffer (e.g. via ``np.subtract
        (..., out=buf)``) before reading it.
        """
        key = (tag, shape)
        buffer = self._block_buffers.get(key)
        if buffer is None:
            self.counters.miss()
            buffer = np.empty(shape, dtype=np.float64)
            self._block_buffers[key] = buffer
        else:
            self.counters.hit()
        return buffer
