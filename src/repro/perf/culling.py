"""Per-frame projection/transform memo for frustum culling.

Union culling (``repro.core.multiway.cull_views_union``) and the SFU's
per-receiver re-cull (``repro.sfu.node.SFUNode.forward``) both walk the
same (camera, frustum) grid every frame.  Three quantities in that walk
are pure functions of state that changes rarely or not at all:

- ``camera.extrinsics.world_to_camera`` -- a 4x4 inversion recomputed
  on every property access, but constant for a calibrated rig;
- ``camera.local_points(depth)`` -- the (H, W, 3) per-pixel ray scale,
  identical across every cull of the same capture instant (culling
  only *zeroes* depth pixels, so all depth images derived from one
  capture agree wherever depth is nonzero -- and zero-depth pixels are
  masked out by the caller's ``valid`` mask anyway);
- ``frustum.transformed(world_to_camera)`` -- six plane transforms per
  (frustum, camera) pair, reused when the SFU re-culls the same
  predicted frustum against the cached union geometry.

:class:`CullCache` memoizes all three with the same contract as every
cache in this package: byte-identical outputs to the uncached path
(the memoized values are bit-for-bit the ones the direct calls would
produce), process-local, hit/miss counted.
"""

from __future__ import annotations

import numpy as np

from repro.perf.counters import CacheCounters

__all__ = ["CullCache"]


class CullCache:
    """Memo for the per-(camera, frustum) work of one cull pass.

    Per-camera ``world_to_camera`` matrices persist for the cache's
    lifetime (rig calibration is fixed); per-pixel point grids and
    transformed frustums are scoped to one frame sequence and dropped
    on :meth:`begin_frame`.

    The point-grid memo relies on a documented invariant of the culling
    pipeline: every depth image offered for one (camera, sequence) pair
    agrees on its nonzero pixels (culling only zeroes pixels, never
    rewrites them), and callers mask with their own fresh ``valid``
    mask, so reusing the first-seen grid is exact.
    """

    def __init__(self) -> None:
        self.counters = CacheCounters("cull_projection")
        self._sequence: int | None = None
        self._w2c: dict[int, np.ndarray] = {}
        self._points: dict[int, np.ndarray] = {}
        self._frustums: dict[tuple[int, int], object] = {}

    def begin_frame(self, sequence: int) -> None:
        """Drop per-frame memos when a new capture instant starts."""
        if sequence != self._sequence:
            self._sequence = sequence
            self._points.clear()
            self._frustums.clear()

    def world_to_camera(self, camera) -> np.ndarray:
        """The camera's (cached) world-to-camera transform."""
        key = id(camera)
        cached = self._w2c.get(key)
        if cached is None:
            cached = camera.extrinsics.world_to_camera
            self._w2c[key] = cached
        return cached

    def local_points(self, camera, depth_mm: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``camera.local_points`` with the point grid memoized per frame.

        The validity mask is always computed fresh from ``depth_mm`` --
        it is the part that differs between the raw capture and its
        culled derivatives, and it is cheap.
        """
        key = id(camera)
        points = self._points.get(key)
        if points is None:
            self.counters.miss()
            points, valid = camera.local_points(depth_mm)
            self._points[key] = points
            return points, valid
        self.counters.hit()
        return points, np.asarray(depth_mm) > 0

    def transformed_frustum(self, frustum, camera):
        """``frustum.transformed(world_to_camera)``, memoized per frame."""
        key = (id(frustum), id(camera))
        cached = self._frustums.get(key)
        if cached is None:
            self.counters.miss()
            cached = frustum.transformed(self.world_to_camera(camera))
            self._frustums[key] = cached
            return cached
        self.counters.hit()
        return cached

    def forget_camera(self, camera) -> None:
        """Drop a camera's persistent entries (rig re-calibration)."""
        self._w2c.pop(id(camera), None)
        self._points.pop(id(camera), None)
