"""Shared-memory payload codecs for capture frames and point clouds.

The handle protocol (:mod:`repro.runtime.shm`) moves raw arrays; this
module packs the heavy session payloads -- a
:class:`~repro.capture.rgbd.MultiViewFrame` crossing into quality
workers, a decoded :class:`~repro.core.receiver.DecodedPair` of tile
arrays, a :class:`~repro.geometry.pointcloud.PointCloud` -- into
shared segments, so a multi-megabyte payload crosses the process
boundary as a ~100-byte pickle of names and offsets.

Frames whose views already live in the arena (captured through the
zero-copy lane, which attaches ``shm_view_refs``) are not copied at
all: :func:`share_multiview` retains the existing capture segments and
hands out refs that alias them.  Only frames from outside the arena
(serial capture, a fault hook's synthetic frame) pay the one copy into
a fresh segment.

Both handles round-trip losslessly: the loaded frame/cloud views the
shared pages in place (no copy on the worker side), and every array is
bit-identical to the original, so shm-routed sessions replay
byte-identically to plain argument passing (asserted in the executor
parity tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capture.rgbd import MultiViewFrame, RGBDFrame
from repro.core.receiver import DecodedPair
from repro.geometry.pointcloud import PointCloud
from repro.runtime.shm import ShmArena, ShmArrayRef, attach_array

__all__ = [
    "ShmFrameHandle",
    "ShmCloudHandle",
    "ShmPairHandle",
    "share_multiview",
    "load_multiview",
    "share_cloud",
    "load_cloud",
    "share_pair",
    "load_pair",
]


def _distinct_segments(refs) -> tuple:
    """One ref per distinct underlying segment, in first-seen order."""
    seen = {}
    for ref in refs:
        if ref.name not in seen:
            seen[ref.name] = ref
    return tuple(seen.values())


@dataclass(frozen=True)
class ShmFrameHandle:
    """A multi-view frame as refs into shared segments.

    One segment when the frame was packed by :func:`share_multiview`'s
    copy path; one per capture chunk when the refs alias the zero-copy
    capture lane's segments.
    """

    sequence: int
    timestamp_s: float
    camera_ids: tuple
    depth_refs: tuple
    color_refs: tuple

    @property
    def segment_refs(self) -> tuple:
        """One ref per underlying segment (the release tokens)."""
        return _distinct_segments(self.depth_refs + self.color_refs)


@dataclass(frozen=True)
class ShmCloudHandle:
    """A point cloud as refs into one shared segment."""

    positions: ShmArrayRef
    colors: ShmArrayRef

    @property
    def segment_refs(self) -> tuple:
        return _distinct_segments((self.positions, self.colors))


@dataclass(frozen=True)
class ShmPairHandle:
    """A decoded (color, depth) tile pair as refs into one segment.

    Shipping the *pair* instead of the rendered cloud moves the whole
    reconstruct + render-prep step into the quality worker, off the
    session's critical path.
    """

    sequence: int
    color_refs: tuple
    depth_refs: tuple

    @property
    def segment_refs(self) -> tuple:
        return _distinct_segments(self.color_refs + self.depth_refs)


def share_multiview(arena: ShmArena, frame: MultiViewFrame) -> ShmFrameHandle:
    """Share a frame's per-view depth/color arrays, zero-copy when able.

    A frame captured through the arena carries ``shm_view_refs`` -- its
    views already *are* shared pages -- so the handle just retains those
    segments (one extra reference each) and no bytes move.  Any other
    frame is packed into one fresh segment.  Either way the caller must
    release every ref in ``handle.segment_refs`` once all consumers are
    done.  Frames with no views cannot be shared (nothing to pack);
    callers pass those tiny frames through as plain arguments.
    """
    if not frame.views:
        raise ValueError("cannot share a frame with no views")
    view_refs = getattr(frame, "shm_view_refs", None)
    if (
        view_refs is not None
        and len(view_refs) == len(frame.views)
        and all(
            arena.owns(depth_ref) and arena.owns(color_ref)
            for depth_ref, color_ref in view_refs
        )
    ):
        handle = ShmFrameHandle(
            sequence=frame.sequence,
            timestamp_s=frame.timestamp_s,
            camera_ids=tuple(view.camera_id for view in frame.views),
            depth_refs=tuple(depth for depth, _ in view_refs),
            color_refs=tuple(color for _, color in view_refs),
        )
        for ref in handle.segment_refs:
            arena.retain(ref)
        return handle
    arrays = [view.depth_mm for view in frame.views] + [
        view.color for view in frame.views
    ]
    refs = arena.share(*arrays)
    count = len(frame.views)
    return ShmFrameHandle(
        sequence=frame.sequence,
        timestamp_s=frame.timestamp_s,
        camera_ids=tuple(view.camera_id for view in frame.views),
        depth_refs=tuple(refs[:count]),
        color_refs=tuple(refs[count:]),
    )


def load_multiview(handle: ShmFrameHandle) -> MultiViewFrame:
    """Reconstruct a frame viewing the shared pages in place."""
    views = [
        RGBDFrame(
            attach_array(color_ref),
            attach_array(depth_ref),
            camera_id=camera_id,
            sequence=handle.sequence,
            timestamp_s=handle.timestamp_s,
        )
        for camera_id, depth_ref, color_ref in zip(
            handle.camera_ids, handle.depth_refs, handle.color_refs
        )
    ]
    return MultiViewFrame(
        views, sequence=handle.sequence, timestamp_s=handle.timestamp_s
    )


def share_cloud(arena: ShmArena, cloud: PointCloud) -> ShmCloudHandle:
    """Pack a cloud's positions and colors into one segment."""
    positions_ref, colors_ref = arena.share(cloud.positions, cloud.colors)
    return ShmCloudHandle(positions=positions_ref, colors=colors_ref)


def load_cloud(handle: ShmCloudHandle) -> PointCloud:
    """Reconstruct a cloud viewing the shared pages in place."""
    return PointCloud(
        attach_array(handle.positions), attach_array(handle.colors)
    )


def share_pair(arena: ShmArena, pair: DecodedPair) -> ShmPairHandle:
    """Pack a decoded pair's tile arrays into one segment."""
    count = len(pair.color_tiles)
    refs = arena.share(*pair.color_tiles, *pair.depth_tiles_mm)
    return ShmPairHandle(
        sequence=pair.sequence,
        color_refs=tuple(refs[:count]),
        depth_refs=tuple(refs[count:]),
    )


def load_pair(handle: ShmPairHandle) -> DecodedPair:
    """Reconstruct a decoded pair viewing the shared pages in place."""
    return DecodedPair(
        sequence=handle.sequence,
        color_tiles=[attach_array(ref) for ref in handle.color_refs],
        depth_tiles_mm=[attach_array(ref) for ref in handle.depth_refs],
    )
