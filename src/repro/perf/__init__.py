"""Kernel-cache layer: incremental computation and buffer reuse.

The serial per-frame budget is dominated by the capture splat renderer
and the PointSSIM quality kernel (see BENCH_runtime.json); both redo
work that is identical frame to frame.  This package holds the caches
that remove the redundancy without changing a single output byte:

- :class:`~repro.perf.capture.CachedFrameSource` -- incremental capture:
  static scene points are projected through each camera once and their
  splat arrays reused every frame (``repro.capture.renderer.ProjectionCache``
  does the per-camera caching).
- :class:`~repro.perf.features.FeatureCache` -- PointSSIM features
  (KD-tree + per-point geometry/color features) memoized by a cheap
  content fingerprint, so a reference cloud scored against several
  baselines builds its tree once.
- :class:`~repro.perf.scratch.ScratchArena` -- codec scratch reuse:
  memoized quantization matrices / motion offset tables and reusable
  motion-search buffers.

Caches are process-local by design: a fork-process executor's workers
each grow their own copies (see DESIGN.md section 9), which keeps the
layer coherency-free and byte-identical to the uncached paths.
"""

from repro.perf.counters import CacheCounters
from repro.perf.culling import CullCache
from repro.perf.features import FeatureCache
from repro.perf.fingerprint import array_fingerprint, cloud_fingerprint

__all__ = [
    "CachedFrameSource",
    "CacheCounters",
    "CullCache",
    "FeatureCache",
    "ScratchArena",
    "array_fingerprint",
    "cloud_fingerprint",
]

# CachedFrameSource and ScratchArena pull in the renderer and codec
# modules, which themselves use repro.perf.counters -- importing them
# eagerly here would close an import cycle.  PEP 562 keeps them lazy.
_LAZY = {
    "CachedFrameSource": ("repro.perf.capture", "CachedFrameSource"),
    "ScratchArena": ("repro.perf.scratch", "ScratchArena"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
