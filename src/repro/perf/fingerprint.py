"""Cheap content fingerprints for cache keys.

A fingerprint must be orders of magnitude cheaper than the work it
guards (a PointSSIM feature build is tens of milliseconds; the
fingerprint is microseconds) while making accidental collisions
implausible.  The scheme: shape + dtype + a CRC over a strided row
sample + the exact float sum of all elements.  Two clouds that differ
anywhere will almost surely differ in the sampled rows or the sum; two
identical clouds always collide, which is the point.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["array_fingerprint", "cloud_fingerprint"]

# At most this many leading-axis rows feed the CRC; keeps the hash cost
# flat no matter how large the cloud is.
_MAX_SAMPLED_ROWS = 256


def array_fingerprint(array: np.ndarray) -> tuple:
    """Content fingerprint of one array (hashable tuple)."""
    a = np.asarray(array)
    if a.size == 0:
        return (a.shape, a.dtype.str, 0, 0.0)
    stride = max(1, (a.shape[0] if a.ndim else 1) // _MAX_SAMPLED_ROWS)
    sample = np.ascontiguousarray(a[::stride] if a.ndim else a)
    crc = zlib.crc32(sample.tobytes())
    total = float(a.sum(dtype=np.float64))
    return (a.shape, a.dtype.str, crc, total)


def cloud_fingerprint(cloud) -> tuple:
    """Fingerprint of a :class:`~repro.geometry.pointcloud.PointCloud`."""
    return (array_fingerprint(cloud.positions), array_fingerprint(cloud.colors))
