"""Hit/miss accounting shared by every kernel cache.

Counters are deliberately dumb -- two integers -- so recording a hit
costs nothing measurable on the hot path.  They surface in the
``--profile`` output next to the stage-timing table, which is how a
regressed cache (0% hit rate) becomes visible instead of silently
falling back to the slow path.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheCounters"]


@dataclass
class CacheCounters:
    """Hit/miss tally for one cache."""

    name: str
    hits: int = 0
    misses: int = 0

    def hit(self, count: int = 1) -> None:
        self.hits += count

    def miss(self, count: int = 1) -> None:
        self.misses += count

    @property
    def lookups(self) -> int:
        """Total lookups recorded."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheCounters") -> None:
        """Fold another counter's tallies into this one."""
        self.hits += other.hits
        self.misses += other.misses

    def to_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }
