"""Hit/miss accounting shared by every kernel cache.

Counters are deliberately dumb -- two integers -- so recording a hit
costs nothing measurable on the hot path.  They surface in the
``--profile`` output next to the stage-timing table, which is how a
regressed cache (0% hit rate) becomes visible instead of silently
falling back to the slow path.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheCounters", "BatchCounters"]


@dataclass
class CacheCounters:
    """Hit/miss tally for one cache."""

    name: str
    hits: int = 0
    misses: int = 0

    def hit(self, count: int = 1) -> None:
        self.hits += count

    def miss(self, count: int = 1) -> None:
        self.misses += count

    @property
    def lookups(self) -> int:
        """Total lookups recorded."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheCounters") -> None:
        """Fold another counter's tallies into this one."""
        self.hits += other.hits
        self.misses += other.misses

    def to_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class BatchCounters:
    """Batched-vs-scalar tally for a vectorized fast path.

    Items that went through a batched call count as hits, items that
    fell back to per-item processing count as misses, so the profile
    table (which reads hits/misses/hit_rate) shows the batched fraction
    without special-casing.
    """

    name: str
    batches: int = 0
    batched_items: int = 0
    scalar_items: int = 0

    def batch(self, count: int) -> None:
        """Record one batched call covering ``count`` items."""
        self.batches += 1
        self.batched_items += count

    def scalar(self, count: int = 1) -> None:
        """Record items processed one at a time."""
        self.scalar_items += count

    @property
    def items(self) -> int:
        """Total items recorded."""
        return self.batched_items + self.scalar_items

    @property
    def batched_fraction(self) -> float:
        """Fraction of items that went through a batched call."""
        total = self.items
        return self.batched_items / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly summary (profile-table compatible)."""
        return {
            "hits": self.batched_items,
            "misses": self.scalar_items,
            "hit_rate": round(self.batched_fraction, 4),
            "batches": self.batches,
        }
