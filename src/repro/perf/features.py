"""LRU cache for PointSSIM cloud features.

PointSSIM spends most of its time building each cloud's KD-tree and
per-point neighborhood features.  When the same cloud is scored more
than once -- a reference frame compared against several baselines, or
both directions of the symmetric pooling -- that build is pure waste.
The cache keys features by a content fingerprint
(:func:`~repro.perf.fingerprint.cloud_fingerprint`), so callers never
have to thread identity through their code: scoring the same *content*
twice hits regardless of where the arrays came from.

The cache is process-local.  Fork-process executor workers each inherit
an empty (or partially warm) copy at fork time and grow it privately;
features never cross a pipe (see DESIGN.md section 9).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.perf.counters import CacheCounters

__all__ = ["FeatureCache"]

DEFAULT_CAPACITY = 8


class FeatureCache:
    """LRU map from cloud fingerprint to precomputed PointSSIM features."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.counters = CacheCounters("quality_features")

    def __len__(self) -> int:
        return len(self._entries)

    def features(self, cloud, k: int):
        """Features for ``cloud`` at neighborhood size ``k``, cached.

        Import is deferred to call time: this module must stay importable
        from :mod:`repro.metrics.pointssim` without a cycle.
        """
        from repro.metrics.pointssim import precompute_features

        key = self._key(cloud, k)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.counters.hit()
            return entry
        self.counters.miss()
        entry = precompute_features(cloud, k)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    @staticmethod
    def _key(cloud, k: int) -> tuple:
        from repro.perf.fingerprint import cloud_fingerprint

        return (cloud_fingerprint(cloud), k)

    def clear(self) -> None:
        """Drop every entry (counters keep their history)."""
        self._entries.clear()
