"""MLP pose predictor (the learned baseline of Fig. 16).

ViVo trains viewport predictors from user traces; the paper asks
whether "an MLP with 3 hidden layers used in ViVo could learn
effectively from a small number of our traces" and finds small networks
(3 hidden units) predict poorly while 64-unit networks approach the
Kalman filter on position.  This is a small from-scratch NumPy MLP
(Adam + MSE) that maps a window of past poses to the pose one horizon
ahead.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.pose import PoseTrace

__all__ = ["MLPPosePredictor"]


class MLPPosePredictor:
    """Window-of-poses -> future-pose regressor with 3 hidden layers."""

    def __init__(
        self,
        hidden_units: int = 32,
        window: int = 5,
        horizon_frames: int = 3,
        seed: int = 0,
    ) -> None:
        if hidden_units <= 0 or window <= 0 or horizon_frames <= 0:
            raise ValueError("hidden_units, window, horizon_frames must be positive")
        self.hidden_units = hidden_units
        self.window = window
        self.horizon_frames = horizon_frames
        rng = np.random.default_rng(seed)
        sizes = [window * 6, hidden_units, hidden_units, hidden_units, 6]
        self._weights = [
            rng.normal(0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        self._input_mean = np.zeros(window * 6)
        self._input_std = np.ones(window * 6)
        self._trained = False

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [x]
        h = x
        for layer in range(len(self._weights) - 1):
            h = np.maximum(h @ self._weights[layer] + self._biases[layer], 0.0)
            activations.append(h)
        out = h @ self._weights[-1] + self._biases[-1]
        return out, activations

    def _dataset(self, traces: list[PoseTrace]) -> tuple[np.ndarray, np.ndarray]:
        """Windows of absolute poses in, horizon pose out.

        This mirrors ViVo's predictor: the network regresses the future
        viewport from a window of past viewports.  Absolute-coordinate
        regression is exactly what makes capacity matter (Fig. 16): a
        3-unit bottleneck cannot represent the trajectory manifold of
        even a few traces, while 64 units can.
        """
        inputs, targets = [], []
        for trace in traces:
            matrix = trace.as_matrix()
            last_start = len(matrix) - self.window - self.horizon_frames
            for start in range(max(last_start, 0)):
                window = matrix[start : start + self.window].ravel()
                target = matrix[start + self.window + self.horizon_frames - 1]
                inputs.append(window)
                targets.append(target)
        if not inputs:
            raise ValueError("traces too short for the window/horizon")
        return np.stack(inputs), np.stack(targets)

    def fit(
        self,
        traces: list[PoseTrace],
        epochs: int = 200,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> float:
        """Train on pose traces; returns the final epoch's mean loss."""
        inputs, targets = self._dataset(traces)
        self._input_mean = inputs.mean(axis=0)
        self._input_std = inputs.std(axis=0) + 1e-8
        inputs = (inputs - self._input_mean) / self._input_std

        rng = np.random.default_rng(seed)
        # Adam state.
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        final_loss = float("inf")

        for _ in range(epochs):
            order = rng.permutation(len(inputs))
            losses = []
            for start in range(0, len(order), batch_size):
                batch = order[start : start + batch_size]
                x, y = inputs[batch], targets[batch]
                out, activations = self._forward(x)
                error = out - y
                losses.append(float((error**2).mean()))

                # Backprop.
                grad = 2.0 * error / len(batch)
                grads_w, grads_b = [], []
                for layer in reversed(range(len(self._weights))):
                    grads_w.append(activations[layer].T @ grad)
                    grads_b.append(grad.sum(axis=0))
                    if layer > 0:
                        grad = grad @ self._weights[layer].T
                        grad = grad * (activations[layer] > 0)
                grads_w.reverse()
                grads_b.reverse()

                step += 1
                for layer in range(len(self._weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_hat = m_w[layer] / (1 - beta1**step)
                    v_hat = v_w[layer] / (1 - beta2**step)
                    self._weights[layer] -= learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    m_hat = m_b[layer] / (1 - beta1**step)
                    v_hat = v_b[layer] / (1 - beta2**step)
                    self._biases[layer] -= learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            final_loss = float(np.mean(losses))
        self._trained = True
        return final_loss

    def predict(self, recent_poses: np.ndarray) -> np.ndarray:
        """Predict the pose ``horizon_frames`` beyond a pose window.

        Args:
            recent_poses: ``(window, 6)`` matrix of the latest poses.

        Returns:
            Predicted 6-vector pose.
        """
        if not self._trained:
            raise RuntimeError("predictor is not trained")
        recent_poses = np.asarray(recent_poses, dtype=np.float64)
        if recent_poses.shape != (self.window, 6):
            raise ValueError(f"expected ({self.window}, 6) pose window")
        x = (recent_poses.ravel() - self._input_mean) / self._input_std
        out, _ = self._forward(x[None, :])
        return out[0]

    def evaluate(self, traces: list[PoseTrace]) -> tuple[float, float]:
        """Mean position error (m) and rotation error (deg) on traces.

        The two numbers Fig. 16 reports.
        """
        inputs, targets = self._dataset(traces)
        x = (inputs - self._input_mean) / self._input_std
        out, _ = self._forward(x)
        position_error = float(np.linalg.norm(out[:, :3] - targets[:, :3], axis=1).mean())
        rotation_error = float(
            np.rad2deg(np.abs(out[:, 3:] - targets[:, 3:])).mean()
        )
        return position_error, rotation_error
