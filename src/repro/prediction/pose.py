"""6-DoF poses and user interactivity traces.

A user trace is "the sequence of her instantaneous poses (position and
rotation)" recorded by the headset at the capture frame rate (paper
section 4.1).  The paper collected three traces per video under an IRB
study; those aren't public, so we generate smooth synthetic viewer
trajectories with the behaviour the paper describes: users dwell on a
subject, then move to a different viewpoint ("users often focus on a
few subjects at any given instant", section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.transforms import euler_to_rotation, look_at, rotation_to_euler

__all__ = ["Pose", "PoseTrace", "synthetic_user_trace", "user_traces_for_video"]


@dataclass(frozen=True)
class Pose:
    """A 6-DoF headset pose: position (m) + intrinsic XYZ Euler angles (rad)."""

    position: np.ndarray
    orientation: np.ndarray

    def __post_init__(self) -> None:
        position = np.asarray(self.position, dtype=np.float64)
        orientation = np.asarray(self.orientation, dtype=np.float64)
        if position.shape != (3,) or orientation.shape != (3,):
            raise ValueError("position and orientation must be 3-vectors")
        object.__setattr__(self, "position", position)
        object.__setattr__(self, "orientation", orientation)

    def rotation_matrix(self) -> np.ndarray:
        """Rotation matrix mapping viewer-local axes to world axes."""
        return euler_to_rotation(*self.orientation)

    def as_vector(self) -> np.ndarray:
        """Flat 6-vector [x, y, z, pitch, yaw, roll]."""
        return np.concatenate([self.position, self.orientation])

    @staticmethod
    def from_vector(vector: np.ndarray) -> "Pose":
        """Inverse of :meth:`as_vector`."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (6,):
            raise ValueError("pose vector must have 6 elements")
        return Pose(vector[:3], vector[3:])

    @staticmethod
    def looking_at(position: np.ndarray, target: np.ndarray) -> "Pose":
        """Pose at ``position`` with view direction toward ``target``."""
        transform = look_at(position, target)
        return Pose(np.asarray(position, dtype=np.float64),
                    np.array(rotation_to_euler(transform[:3, :3])))


class PoseTrace:
    """A pose per frame at a fixed rate (the headset's tracking stream)."""

    def __init__(self, poses: list[Pose], fps: float = 30.0, name: str = "trace") -> None:
        if not poses:
            raise ValueError("a trace needs at least one pose")
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.poses = list(poses)
        self.fps = float(fps)
        self.name = name

    def __len__(self) -> int:
        return len(self.poses)

    def pose_at_frame(self, frame: int) -> Pose:
        """Pose for a frame index; clamps at the ends."""
        return self.poses[min(max(frame, 0), len(self.poses) - 1)]

    def pose_at_time(self, t: float) -> Pose:
        """Pose at a continuous time, nearest-frame sampling."""
        return self.pose_at_frame(int(round(t * self.fps)))

    def as_matrix(self) -> np.ndarray:
        """All poses as an ``(N, 6)`` matrix (for training predictors)."""
        return np.stack([pose.as_vector() for pose in self.poses])


def _ease(t: np.ndarray) -> np.ndarray:
    """Cosine ease-in-out on [0, 1]: smooth velocity at segment ends."""
    return 0.5 - 0.5 * np.cos(np.pi * np.clip(t, 0.0, 1.0))


def synthetic_user_trace(
    num_frames: int,
    fps: float = 30.0,
    scene_center: np.ndarray | None = None,
    orbit_radius_m: float = 2.0,
    seed: int = 0,
    dwell_s: float = 1.2,
    move_s: float = 1.0,
    jitter_m: float = 0.01,
    name: str = "user",
) -> PoseTrace:
    """Generate a dwell-and-move viewer trajectory around a scene.

    The viewer alternates between dwelling at a viewpoint (looking at a
    point near the scene center, with small head jitter) and smoothly
    moving to the next viewpoint on an orbit of varying radius/height.
    """
    if num_frames <= 0:
        raise ValueError("num_frames must be positive")
    if scene_center is None:
        scene_center = np.array([0.0, 1.0, 0.0])
    scene_center = np.asarray(scene_center, dtype=np.float64)
    rng = np.random.default_rng(seed)

    # Viewpoints evolve as a random walk on (angle, radius, height):
    # people step to nearby vantage points at walking speed, they don't
    # teleport across the room.
    state = {
        "angle": rng.uniform(0, 2 * np.pi),
        "radius": orbit_radius_m * rng.uniform(0.8, 1.1),
        "height": rng.uniform(1.4, 1.7),
    }

    def random_viewpoint() -> np.ndarray:
        state["angle"] += rng.uniform(-0.8, 0.8)
        state["radius"] = float(
            np.clip(
                state["radius"] + rng.uniform(-0.4, 0.4),
                orbit_radius_m * 0.6,
                orbit_radius_m * 1.3,
            )
        )
        state["height"] = float(np.clip(state["height"] + rng.uniform(-0.15, 0.15), 1.3, 1.8))
        return np.array(
            [
                state["radius"] * np.cos(state["angle"]),
                state["height"],
                state["radius"] * np.sin(state["angle"]),
            ]
        )

    dwell_frames = max(1, int(round(dwell_s * fps)))
    move_frames = max(1, int(round(move_s * fps)))

    positions = np.empty((num_frames, 3))
    targets = np.empty((num_frames, 3))
    current = np.array(
        [
            state["radius"] * np.cos(state["angle"]),
            state["height"],
            state["radius"] * np.sin(state["angle"]),
        ]
    )
    current_target = scene_center + rng.normal(0, 0.2, size=3)
    frame = 0
    while frame < num_frames:
        # Dwell phase.
        dwell_end = min(frame + dwell_frames, num_frames)
        positions[frame:dwell_end] = current
        targets[frame:dwell_end] = current_target
        frame = dwell_end
        if frame >= num_frames:
            break
        # Move phase toward the next viewpoint.
        next_position = random_viewpoint()
        next_target = scene_center + rng.normal(0, 0.2, size=3)
        move_end = min(frame + move_frames, num_frames)
        steps = move_end - frame
        alpha = _ease(np.arange(1, steps + 1) / move_frames)[:, None]
        positions[frame:move_end] = current + alpha * (next_position - current)
        targets[frame:move_end] = current_target + alpha * (next_target - current_target)
        frame = move_end
        current, current_target = next_position, next_target

    positions += rng.normal(0, jitter_m, size=positions.shape)
    poses = [
        Pose.looking_at(positions[index], targets[index]) for index in range(num_frames)
    ]
    return PoseTrace(poses, fps=fps, name=name)


def user_traces_for_video(
    video_name: str, num_frames: int, num_traces: int = 3, fps: float = 30.0
) -> list[PoseTrace]:
    """The paper's three user traces per video, as deterministic synthetics."""
    # zlib.crc32 is stable across interpreter runs (str hash is not).
    import zlib

    base_seed = zlib.crc32(video_name.encode()) % (2**31)
    return [
        synthetic_user_trace(
            num_frames,
            fps=fps,
            seed=base_seed + index,
            name=f"{video_name}-user{index}",
        )
        for index in range(num_traces)
    ]
