"""View prediction and culling (paper section 3.4).

The sender must know the receiver's future frustum to cull content it
will never see.  This package provides:

- :mod:`repro.prediction.pose` -- 6-DoF pose types and synthetic user
  traces (substituting the paper's IRB-collected headset traces);
- :mod:`repro.prediction.kalman` -- the constant-velocity Kalman filter
  LiVo predicts with (following Gul et al.);
- :mod:`repro.prediction.mlp` -- the learned MLP predictor baseline the
  paper evaluates against in Fig. 16 (ViVo-style);
- :mod:`repro.prediction.predictor` -- frustum prediction with
  guard-band expansion;
- :mod:`repro.prediction.culling` -- per-pixel RGB-D view culling in
  camera-local coordinates, without point cloud reconstruction.
"""

from repro.prediction.culling import cull_views, culling_accuracy
from repro.prediction.kalman import ConstantVelocityKalman, PoseKalmanPredictor
from repro.prediction.mlp import MLPPosePredictor
from repro.prediction.pose import Pose, PoseTrace, synthetic_user_trace, user_traces_for_video
from repro.prediction.predictor import FrustumPredictor, ViewingDevice

__all__ = [
    "cull_views",
    "culling_accuracy",
    "ConstantVelocityKalman",
    "PoseKalmanPredictor",
    "MLPPosePredictor",
    "Pose",
    "PoseTrace",
    "synthetic_user_trace",
    "user_traces_for_video",
    "FrustumPredictor",
    "ViewingDevice",
]
