"""Frustum prediction with guard-band expansion (section 3.4).

The sender combines (a) the Kalman-predicted receiver pose at
``t + delta_t`` (delta_t = half the smoothed RTT), (b) the viewing
device's optics, and (c) a guard band that absorbs prediction error
("an epsilon of 20 cm represents a sweet-spot", Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.frustum import Frustum
from repro.prediction.kalman import PoseKalmanPredictor
from repro.prediction.pose import Pose

__all__ = ["ViewingDevice", "FrustumPredictor", "DEFAULT_GUARD_BAND_M"]

DEFAULT_GUARD_BAND_M = 0.20


@dataclass(frozen=True)
class ViewingDevice:
    """Headset optics the receiver shares at connection setup."""

    vertical_fov_deg: float = 60.0
    aspect: float = 16.0 / 9.0
    near_m: float = 0.1
    far_m: float = 10.0

    def frustum_for(self, pose: Pose) -> Frustum:
        """Exact frustum for a pose on this device."""
        return Frustum.from_camera(
            pose.position,
            pose.rotation_matrix(),
            vertical_fov_deg=self.vertical_fov_deg,
            aspect=self.aspect,
            near_m=self.near_m,
            far_m=self.far_m,
        )


class FrustumPredictor:
    """Kalman pose prediction + device optics + guard band."""

    def __init__(
        self,
        device: ViewingDevice | None = None,
        guard_band_m: float = DEFAULT_GUARD_BAND_M,
        process_noise: float = 1.0,
        measurement_noise: float = 1e-4,
    ) -> None:
        if guard_band_m < 0:
            raise ValueError("guard_band_m must be non-negative")
        self.device = device or ViewingDevice()
        self.guard_band_m = float(guard_band_m)
        self._kalman = PoseKalmanPredictor(process_noise, measurement_noise)
        self._last_pose: Pose | None = None

    @property
    def ready(self) -> bool:
        """True once at least one pose report has arrived."""
        return self._kalman.ready

    def observe(self, pose: Pose, timestamp_s: float) -> None:
        """Fold in a (delayed) pose report from the receiver."""
        self._kalman.observe(pose, timestamp_s)
        self._last_pose = pose

    def predict_pose(self, horizon_s: float) -> Pose:
        """Predicted receiver pose ``horizon_s`` past the last report."""
        return self._kalman.predict(horizon_s)

    def predict_frustum(self, horizon_s: float) -> Frustum:
        """Guard-band-expanded frustum at the prediction horizon."""
        pose = self.predict_pose(horizon_s)
        frustum = self.device.frustum_for(pose)
        if self.guard_band_m > 0:
            frustum = frustum.expanded(self.guard_band_m)
        return frustum
