"""RGB-D view culling without point cloud reconstruction (section 3.4).

"For each RGB-D camera, LiVo first transforms the frustum into the
local coordinate system of the camera.  Then, for each pixel, it obtains
that pixel's local coordinates and determines if it lies within the
frustum."  Culled pixels are zeroed in both color and depth; zero
regions cost the 2D codec almost nothing, which is where the bandwidth
saving comes from.
"""

from __future__ import annotations

import numpy as np

from repro.capture.rgbd import MultiViewFrame
from repro.geometry.camera import RGBDCamera
from repro.geometry.frustum import Frustum

__all__ = ["cull_views", "culling_accuracy"]


def cull_views(
    frame: MultiViewFrame,
    cameras: list[RGBDCamera],
    frustum: Frustum,
) -> MultiViewFrame:
    """Zero out pixels outside the (world-frame) frustum, per camera.

    The frustum is transformed once into each camera's local frame; each
    pixel is then back-projected to its camera-local 3D point and tested
    against the six planes -- no point cloud is ever materialized.
    """
    if len(frame.views) != len(cameras):
        raise ValueError(
            f"frame has {len(frame.views)} views but {len(cameras)} cameras given"
        )
    culled_views = []
    for view, camera in zip(frame.views, cameras):
        local_frustum = frustum.transformed(camera.extrinsics.world_to_camera)
        points, valid = camera.local_points(view.depth_mm)
        keep = local_frustum.contains_grid(points) & valid
        culled_views.append(view.culled(keep))
    return MultiViewFrame(culled_views, sequence=frame.sequence, timestamp_s=frame.timestamp_s)


def culling_accuracy(
    frame: MultiViewFrame,
    cameras: list[RGBDCamera],
    predicted_frustum: Frustum,
    actual_frustum: Frustum,
) -> tuple[float, float]:
    """Score a predicted cull against the receiver's actual frustum.

    Returns ``(accuracy, kept_fraction)``, the two numbers Fig. 15
    reports per (guard band, window) cell:

    - ``accuracy``: of the pixels actually visible (inside the actual
      frustum), the fraction the predicted cull kept -- prediction
      recall; 100 percent means culling never removed visible content;
    - ``kept_fraction``: fraction of all valid pixels the predicted
      cull kept (the bracketed "fraction of points within frustum").
    """
    if len(frame.views) != len(cameras):
        raise ValueError("views/cameras mismatch")
    visible_and_kept = 0
    visible_total = 0
    kept_total = 0
    valid_total = 0
    for view, camera in zip(frame.views, cameras):
        points, valid = camera.local_points(view.depth_mm)
        predicted_local = predicted_frustum.transformed(camera.extrinsics.world_to_camera)
        actual_local = actual_frustum.transformed(camera.extrinsics.world_to_camera)
        kept = predicted_local.contains_grid(points) & valid
        visible = actual_local.contains_grid(points) & valid
        visible_and_kept += int(np.count_nonzero(kept & visible))
        visible_total += int(np.count_nonzero(visible))
        kept_total += int(np.count_nonzero(kept))
        valid_total += int(np.count_nonzero(valid))
    accuracy = 1.0 if visible_total == 0 else visible_and_kept / visible_total
    kept_fraction = 0.0 if valid_total == 0 else kept_total / valid_total
    return accuracy, kept_fraction
