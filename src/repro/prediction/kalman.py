"""Constant-velocity Kalman filtering of headset pose.

"LiVo predicts frustums by applying a Kalman Filter on the 6 dimensions
of receiver pose (position and orientation) based on prior work [38]"
(section 3.4).  Each of the 6 pose dimensions gets an independent
2-state (value, velocity) filter -- the structure Gul et al. use for
cloud-VR head-motion prediction.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.pose import Pose

__all__ = ["ConstantVelocityKalman", "PoseKalmanPredictor"]


class ConstantVelocityKalman:
    """Bank of independent 2-state constant-velocity Kalman filters.

    State per dimension: ``[value, velocity]``.  Vectorized over all
    dimensions, so one instance filters the whole 6-DoF pose.
    """

    def __init__(
        self,
        num_dims: int = 6,
        process_noise: float = 1.0,
        measurement_noise: float = 1e-4,
    ) -> None:
        if num_dims <= 0:
            raise ValueError("num_dims must be positive")
        if process_noise <= 0 or measurement_noise <= 0:
            raise ValueError("noise variances must be positive")
        self.num_dims = num_dims
        self.process_noise = float(process_noise)
        self.measurement_noise = float(measurement_noise)
        self._state = np.zeros((num_dims, 2))
        # Per-dim 2x2 covariance, stored stacked.
        self._covariance = np.tile(np.eye(2) * 1e3, (num_dims, 1, 1))
        self._initialized = False

    @property
    def initialized(self) -> bool:
        """True once at least one measurement has been folded in."""
        return self._initialized

    def update(self, measurement: np.ndarray, dt: float) -> None:
        """Predict forward by ``dt`` then correct with a measurement."""
        measurement = np.asarray(measurement, dtype=np.float64)
        if measurement.shape != (self.num_dims,):
            raise ValueError(f"expected {self.num_dims}-vector measurement")
        if not self._initialized:
            self._state[:, 0] = measurement
            self._state[:, 1] = 0.0
            self._initialized = True
            return
        if dt < 0:
            raise ValueError("dt must be non-negative")

        # Predict.
        transition = np.array([[1.0, dt], [0.0, 1.0]])
        # White-acceleration process noise (discretized).
        q = self.process_noise * np.array(
            [[dt**4 / 4.0, dt**3 / 2.0], [dt**3 / 2.0, dt**2]]
        )
        self._state = self._state @ transition.T
        self._covariance = transition @ self._covariance @ transition.T + q

        # Correct (H = [1, 0]).
        innovation = measurement - self._state[:, 0]
        s = self._covariance[:, 0, 0] + self.measurement_noise
        gain = self._covariance[:, :, 0] / s[:, None]          # (D, 2)
        self._state = self._state + gain * innovation[:, None]
        identity = np.eye(2)
        correction = identity[None, :, :] - gain[:, :, None] @ np.array([[1.0, 0.0]])[None, :, :]
        self._covariance = correction @ self._covariance

    def predict(self, horizon_s: float) -> np.ndarray:
        """Extrapolate the filtered state ``horizon_s`` into the future."""
        if not self._initialized:
            raise RuntimeError("filter has no measurements yet")
        if horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")
        return self._state[:, 0] + self._state[:, 1] * horizon_s

    def velocity(self) -> np.ndarray:
        """Current velocity estimates per dimension."""
        return self._state[:, 1].copy()


class PoseKalmanPredictor:
    """Pose-level wrapper: feed observed poses, predict future poses."""

    def __init__(
        self, process_noise: float = 1.0, measurement_noise: float = 1e-4
    ) -> None:
        self._filter = ConstantVelocityKalman(6, process_noise, measurement_noise)
        self._last_time: float | None = None

    @property
    def ready(self) -> bool:
        """True once at least one pose has been observed."""
        return self._filter.initialized

    def observe(self, pose: Pose, timestamp_s: float) -> None:
        """Fold in a pose report from the receiver."""
        dt = 0.0 if self._last_time is None else max(timestamp_s - self._last_time, 0.0)
        self._filter.update(pose.as_vector(), dt)
        self._last_time = timestamp_s

    def predict(self, horizon_s: float) -> Pose:
        """Predicted pose ``horizon_s`` beyond the last observation."""
        return Pose.from_vector(self._filter.predict(horizon_s))
