"""Procedural animated 3D scenes.

Substitute for the Panoptic dataset videos (Table 3).  A scene is a set
of surface primitives -- articulated "people" built from ellipsoids,
box-shaped props/furniture, and a room shell (floor + walls).  Each
primitive can animate over time.  Scenes are *sampled*: ``sample(t)``
returns a dense set of colored surface points that the renderer splats
into per-camera RGB-D images.

What matters for the reproduction is not photorealism but the variables
the paper's evaluation manipulates: the number of participants/objects
(scene complexity), the amount of motion (inter-frame redundancy), and
the spatial extent (culling effectiveness, depth range).  All three are
explicit parameters here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SampleBatch",
    "SurfacePrimitive",
    "Ellipsoid",
    "Box",
    "RoomShell",
    "Person",
    "Scene",
    "make_scene",
]

# Uniform point density for surface sampling (points per square meter).
# Chosen so a default 10-camera 80x60 rig sees mostly hole-free images.
DEFAULT_DENSITY = 900.0


def _positional_shade(points: np.ndarray, scale: float = 2.0, amplitude: float = 0.15) -> np.ndarray:
    """Smooth spatial shading in [1-amplitude, 1+amplitude].

    Real surfaces have *spatially coherent* texture; per-point random
    shading would be sensor-salt speckle that no 2D codec could
    compress, so shading is a smooth function of position.
    """
    phase = (
        np.sin(points[:, 0] * scale)
        + np.sin(points[:, 1] * scale * 1.7 + 1.0)
        + np.sin(points[:, 2] * scale * 1.3 + 2.0)
    ) / 3.0
    return (1.0 + amplitude * phase)[:, None]


@dataclass(frozen=True)
class SampleBatch:
    """One primitive's sampled surface points, tagged static or dynamic.

    Batch mode (:meth:`Scene.sample_batches`) is what makes incremental
    capture possible: a *static* batch is sampled once per scene epoch
    and returns the identical arrays every frame, so a renderer can
    cache its per-camera projection; *dynamic* batches are resampled
    every frame.  ``key`` identifies the batch within its scene and
    ``epoch`` stamps the scene revision it was sampled from -- together
    they key any downstream cache.
    """

    points: np.ndarray
    colors: np.ndarray
    static: bool
    key: str
    epoch: int = 0


class SurfacePrimitive:
    """Base class: something with a surface to sample at time t."""

    def area(self) -> float:
        """Approximate surface area in square meters."""
        raise NotImplementedError

    def is_static(self) -> bool:
        """True when ``sample`` output does not depend on time.

        Static primitives are the incremental-capture fast path: their
        sample batches (and per-camera projections) are computed once
        per scene epoch.  Default is conservative -- dynamic.
        """
        return False

    def sample(self, t: float, count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``count`` surface points at time ``t``.

        Returns ``(points, colors)`` with shapes ``(count, 3)``.
        """
        raise NotImplementedError


@dataclass
class Ellipsoid(SurfacePrimitive):
    """An ellipsoid with optional sinusoidal center motion."""

    center: np.ndarray
    radii: np.ndarray
    color: np.ndarray
    motion_amplitude: np.ndarray = field(default_factory=lambda: np.zeros(3))
    motion_frequency_hz: float = 0.0
    motion_phase: float = 0.0

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=np.float64)
        self.radii = np.asarray(self.radii, dtype=np.float64)
        self.color = np.asarray(self.color, dtype=np.float64)
        self.motion_amplitude = np.asarray(self.motion_amplitude, dtype=np.float64)
        if np.any(self.radii <= 0):
            raise ValueError("ellipsoid radii must be positive")

    def is_static(self) -> bool:
        """Static when the motion term vanishes."""
        return self.motion_frequency_hz == 0.0 or not np.any(self.motion_amplitude)

    def center_at(self, t: float) -> np.ndarray:
        """Animated center position at time ``t``."""
        if self.motion_frequency_hz == 0.0:
            return self.center
        offset = self.motion_amplitude * np.sin(
            2.0 * np.pi * self.motion_frequency_hz * t + self.motion_phase
        )
        return self.center + offset

    def area(self) -> float:
        # Thomsen's approximation for ellipsoid surface area.
        a, b, c = self.radii
        p = 1.6075
        return float(4.0 * np.pi * (((a * b) ** p + (a * c) ** p + (b * c) ** p) / 3.0) ** (1.0 / p))

    def sample(self, t: float, count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        directions = rng.normal(size=(count, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        points = self.center_at(t) + directions * self.radii
        # Slight per-point shading variation so the color channel carries
        # real texture for the 2D codec to compress.
        shade = 0.8 + 0.4 * (directions[:, 1:2] + 1.0) / 2.0
        colors = np.clip(self.color * shade, 0, 255)
        return points, colors


@dataclass
class Box(SurfacePrimitive):
    """Axis-aligned box (furniture, props); static."""

    center: np.ndarray
    half_extents: np.ndarray
    color: np.ndarray

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=np.float64)
        self.half_extents = np.asarray(self.half_extents, dtype=np.float64)
        self.color = np.asarray(self.color, dtype=np.float64)
        if np.any(self.half_extents <= 0):
            raise ValueError("box half extents must be positive")

    def is_static(self) -> bool:
        return True

    def area(self) -> float:
        hx, hy, hz = self.half_extents
        return float(8.0 * (hx * hy + hy * hz + hx * hz))

    def sample(self, t: float, count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        hx, hy, hz = self.half_extents
        face_areas = np.array([hy * hz, hy * hz, hx * hz, hx * hz, hx * hy, hx * hy])
        face_areas = face_areas / face_areas.sum()
        faces = rng.choice(6, size=count, p=face_areas)
        uv = rng.uniform(-1.0, 1.0, size=(count, 2))
        points = np.empty((count, 3))
        axis = faces // 2            # 0:x, 1:y, 2:z
        sign = np.where(faces % 2 == 0, 1.0, -1.0)
        extents = self.half_extents
        for ax in range(3):
            mask = axis == ax
            others = [a for a in range(3) if a != ax]
            points[mask, ax] = sign[mask] * extents[ax]
            points[mask, others[0]] = uv[mask, 0] * extents[others[0]]
            points[mask, others[1]] = uv[mask, 1] * extents[others[1]]
        points += self.center
        colors = np.clip(self.color * _positional_shade(points), 0, 255)
        return points, colors


@dataclass
class RoomShell(SurfacePrimitive):
    """Floor plus four walls enclosing the capture space.

    Full-scene capture includes "furniture, the floor, walls, etc."
    (paper section 1) -- this is what makes full-scene frames an order of
    magnitude larger than single-person frames.
    """

    half_width: float = 3.0
    half_depth: float = 3.0
    wall_height: float = 2.5
    floor_color: np.ndarray = field(default_factory=lambda: np.array([120.0, 110.0, 100.0]))
    wall_color: np.ndarray = field(default_factory=lambda: np.array([200.0, 196.0, 188.0]))

    def is_static(self) -> bool:
        return True

    def area(self) -> float:
        floor = 4.0 * self.half_width * self.half_depth
        walls = 2.0 * self.wall_height * (2.0 * self.half_width + 2.0 * self.half_depth)
        return float(floor + walls)

    def sample(self, t: float, count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        floor_area = 4.0 * self.half_width * self.half_depth
        wall_area = self.area() - floor_area
        n_floor = int(round(count * floor_area / (floor_area + wall_area)))
        n_wall = count - n_floor

        fx = rng.uniform(-self.half_width, self.half_width, size=n_floor)
        fz = rng.uniform(-self.half_depth, self.half_depth, size=n_floor)
        floor_points = np.stack([fx, np.zeros(n_floor), fz], axis=1)

        # Walls: pick one of four, parameterize along its length and height.
        wall_lengths = np.array(
            [2 * self.half_width, 2 * self.half_width, 2 * self.half_depth, 2 * self.half_depth]
        )
        probs = wall_lengths / wall_lengths.sum()
        which = rng.choice(4, size=n_wall, p=probs)
        along = rng.uniform(-1.0, 1.0, size=n_wall)
        height = rng.uniform(0.0, self.wall_height, size=n_wall)
        wall_points = np.empty((n_wall, 3))
        wall_points[:, 1] = height
        for wall in range(4):
            mask = which == wall
            if wall == 0:      # z = +half_depth
                wall_points[mask, 0] = along[mask] * self.half_width
                wall_points[mask, 2] = self.half_depth
            elif wall == 1:    # z = -half_depth
                wall_points[mask, 0] = along[mask] * self.half_width
                wall_points[mask, 2] = -self.half_depth
            elif wall == 2:    # x = +half_width
                wall_points[mask, 0] = self.half_width
                wall_points[mask, 2] = along[mask] * self.half_depth
            else:              # x = -half_width
                wall_points[mask, 0] = -self.half_width
                wall_points[mask, 2] = along[mask] * self.half_depth

        points = np.concatenate([floor_points, wall_points], axis=0)
        colors = np.concatenate(
            [
                np.tile(self.floor_color, (n_floor, 1)),
                np.tile(self.wall_color, (n_wall, 1)),
            ],
            axis=0,
        )
        return points, np.clip(colors * _positional_shade(points, scale=1.2, amplitude=0.1), 0, 255)


class Person(SurfacePrimitive):
    """An articulated participant built from ellipsoid body parts.

    Torso, head, two arms, and two legs, animated with a shared sway /
    dance motion whose amplitude and frequency control how much
    inter-frame change the codec sees.
    """

    def __init__(
        self,
        position: np.ndarray,
        height_m: float = 1.7,
        clothing_color: np.ndarray | None = None,
        skin_color: np.ndarray | None = None,
        motion_amplitude_m: float = 0.15,
        motion_frequency_hz: float = 0.5,
        phase: float = 0.0,
    ) -> None:
        position = np.asarray(position, dtype=np.float64)
        if clothing_color is None:
            clothing_color = np.array([60.0, 90.0, 160.0])
        if skin_color is None:
            skin_color = np.array([224.0, 172.0, 105.0])
        h = height_m
        sway = np.array([motion_amplitude_m, 0.0, motion_amplitude_m * 0.6])
        self.parts: list[Ellipsoid] = [
            # Torso.
            Ellipsoid(
                position + np.array([0.0, 0.62 * h, 0.0]),
                np.array([0.18, 0.28, 0.12]) * (h / 1.7),
                clothing_color,
                motion_amplitude=sway,
                motion_frequency_hz=motion_frequency_hz,
                motion_phase=phase,
            ),
            # Head.
            Ellipsoid(
                position + np.array([0.0, 0.92 * h, 0.0]),
                np.array([0.10, 0.12, 0.10]) * (h / 1.7),
                skin_color,
                motion_amplitude=sway * 1.2,
                motion_frequency_hz=motion_frequency_hz,
                motion_phase=phase + 0.3,
            ),
            # Arms.
            Ellipsoid(
                position + np.array([0.26, 0.6 * h, 0.0]),
                np.array([0.06, 0.3, 0.06]) * (h / 1.7),
                skin_color,
                motion_amplitude=sway * 1.8,
                motion_frequency_hz=motion_frequency_hz * 1.3,
                motion_phase=phase + 1.0,
            ),
            Ellipsoid(
                position + np.array([-0.26, 0.6 * h, 0.0]),
                np.array([0.06, 0.3, 0.06]) * (h / 1.7),
                skin_color,
                motion_amplitude=sway * 1.8,
                motion_frequency_hz=motion_frequency_hz * 1.3,
                motion_phase=phase + 2.2,
            ),
            # Legs.
            Ellipsoid(
                position + np.array([0.1, 0.25 * h, 0.0]),
                np.array([0.08, 0.42, 0.08]) * (h / 1.7),
                clothing_color * 0.6,
                motion_amplitude=sway * 0.4,
                motion_frequency_hz=motion_frequency_hz,
                motion_phase=phase,
            ),
            Ellipsoid(
                position + np.array([-0.1, 0.25 * h, 0.0]),
                np.array([0.08, 0.42, 0.08]) * (h / 1.7),
                clothing_color * 0.6,
                motion_amplitude=sway * 0.4,
                motion_frequency_hz=motion_frequency_hz,
                motion_phase=phase + np.pi,
            ),
        ]

    def is_static(self) -> bool:
        return all(part.is_static() for part in self.parts)

    def area(self) -> float:
        return sum(part.area() for part in self.parts)

    def sample(self, t: float, count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        areas = np.array([part.area() for part in self.parts])
        weights = areas / areas.sum()
        counts = np.floor(weights * count).astype(int)
        counts[0] += count - counts.sum()
        chunks = [
            part.sample(t, int(n), rng)
            for part, n in zip(self.parts, counts)
            if n > 0
        ]
        points = np.concatenate([c[0] for c in chunks], axis=0)
        colors = np.concatenate([c[1] for c in chunks], axis=0)
        return points, colors


class Scene:
    """A set of primitives sampled jointly at a fixed point budget."""

    def __init__(
        self,
        primitives: list[SurfacePrimitive],
        name: str = "scene",
        num_objects: int | None = None,
        sample_budget: int = 60_000,
        seed: int = 0,
    ) -> None:
        if not primitives:
            raise ValueError("a scene needs at least one primitive")
        self.primitives = list(primitives)
        self.name = name
        self.num_objects = num_objects if num_objects is not None else len(primitives)
        self.sample_budget = int(sample_budget)
        self._seed = int(seed)
        areas = np.array([p.area() for p in self.primitives])
        self._weights = areas / areas.sum()
        self._epoch = 0
        self._static_batches: dict[int, SampleBatch] = {}

    @property
    def epoch(self) -> int:
        """Scene revision counter; bumped by :meth:`invalidate`.

        Downstream caches (static sample batches, per-camera projection
        caches) key on the epoch so a scene edit flushes them all.
        """
        return self._epoch

    def invalidate(self) -> None:
        """Declare the primitive set changed: bump the epoch, drop caches."""
        self._epoch += 1
        self._static_batches.clear()
        areas = np.array([p.area() for p in self.primitives])
        self._weights = areas / areas.sum()

    def static_fraction(self) -> float:
        """Fraction of the sample budget that lands on static primitives."""
        return float(
            sum(
                w
                for w, p in zip(self._weights, self.primitives)
                if p.is_static()
            )
        )

    def sample(self, t: float) -> tuple[np.ndarray, np.ndarray]:
        """Sample the whole scene at time ``t``.

        Returns ``(points, colors)``.  Sampling is deterministic in
        ``(seed, t)`` so capture replays are reproducible, while the
        sample pattern still varies frame to frame like real sensor
        noise does.

        Defined as the concatenation of :meth:`sample_batches` so the
        monolithic and batch sampling paths see byte-identical points:
        a session replayed with the kernel-cache layer disabled matches
        the incremental-capture replay exactly.
        """
        batches = self.sample_batches(t)
        points = np.concatenate([b.points for b in batches], axis=0)
        colors = np.concatenate([b.colors for b in batches], axis=0)
        return points, colors

    def _batch_counts(self) -> np.ndarray:
        """Per-primitive sample counts (time-independent)."""
        counts = np.floor(self._weights * self.sample_budget).astype(int)
        counts[int(np.argmax(counts))] += self.sample_budget - counts.sum()
        return counts

    def sample_batches(self, t: float) -> list[SampleBatch]:
        """Sample the scene as per-primitive batches tagged static/dynamic.

        This is the incremental-capture entry point.  Unlike
        :meth:`sample`, every primitive draws from its *own* seeded RNG
        stream, so a static primitive's batch -- sampled once per epoch
        and cached -- stays byte-identical across frames while dynamic
        primitives still resample deterministically in ``(seed, t)``.
        Concatenating the batches in order yields the same
        ``(points, colors)`` layout :meth:`sample` produces (same budget,
        same primitive order, uint8 colors), just with decoupled random
        streams; renderers may consume either form interchangeably.
        """
        frame_key = int(round(t * 1000.0)) & 0xFFFFFFFF
        counts = self._batch_counts()
        batches: list[SampleBatch] = []
        for index, (prim, n) in enumerate(zip(self.primitives, counts)):
            if n <= 0:
                continue
            if prim.is_static():
                batch = self._static_batches.get(index)
                if batch is None or batch.epoch != self._epoch or len(batch.points) != n:
                    rng = np.random.default_rng(
                        np.random.SeedSequence((self._seed, self._epoch, index))
                    )
                    points, colors = prim.sample(0.0, int(n), rng)
                    batch = SampleBatch(
                        points=points,
                        colors=np.clip(colors, 0, 255).astype(np.uint8),
                        static=True,
                        key=f"static-{index}",
                        epoch=self._epoch,
                    )
                    batch.points.setflags(write=False)
                    batch.colors.setflags(write=False)
                    self._static_batches[index] = batch
            else:
                rng = np.random.default_rng(
                    np.random.SeedSequence((self._seed, self._epoch, index, frame_key))
                )
                points, colors = prim.sample(t, int(n), rng)
                batch = SampleBatch(
                    points=points,
                    colors=np.clip(colors, 0, 255).astype(np.uint8),
                    static=False,
                    key=f"dynamic-{index}",
                    epoch=self._epoch,
                )
            batches.append(batch)
        return batches


def make_scene(
    name: str,
    num_people: int,
    num_props: int,
    motion_amplitude_m: float = 0.15,
    motion_frequency_hz: float = 0.5,
    room_half_width: float = 2.6,
    sample_budget: int = 60_000,
    seed: int = 0,
) -> Scene:
    """Build a full-scene conference setting.

    ``num_people`` participants arranged in a ring, ``num_props``
    box-shaped objects scattered between them, inside a room shell.
    """
    rng = np.random.default_rng(seed)
    primitives: list[SurfacePrimitive] = [
        RoomShell(half_width=room_half_width, half_depth=room_half_width)
    ]
    for index in range(num_people):
        angle = 2.0 * np.pi * index / max(num_people, 1)
        radius = 0.0 if num_people == 1 else 1.1
        position = np.array([radius * np.cos(angle), 0.0, radius * np.sin(angle)])
        clothing = rng.uniform(40, 220, size=3)
        primitives.append(
            Person(
                position,
                height_m=float(rng.uniform(1.55, 1.85)),
                clothing_color=clothing,
                motion_amplitude_m=motion_amplitude_m,
                motion_frequency_hz=motion_frequency_hz,
                phase=float(rng.uniform(0, 2 * np.pi)),
            )
        )
    for _ in range(num_props):
        position = np.array(
            [
                rng.uniform(-room_half_width * 0.7, room_half_width * 0.7),
                rng.uniform(0.2, 0.9),
                rng.uniform(-room_half_width * 0.7, room_half_width * 0.7),
            ]
        )
        half_extents = rng.uniform(0.08, 0.35, size=3)
        position[1] = max(position[1], half_extents[1])
        primitives.append(Box(position, half_extents, rng.uniform(30, 230, size=3)))
    return Scene(
        primitives,
        name=name,
        num_objects=num_people + num_props,
        sample_budget=sample_budget,
        seed=seed,
    )
