"""The five evaluation videos (Table 3), as procedural scene specs.

The paper evaluates on five Panoptic-dataset sequences.  We reproduce
each as a procedural scene whose *complexity knobs* match the paper's
description: object count (people + props), degree of motion, and
spatial extent.  Paper-reported metadata (duration, object count, raw
frame size) is carried alongside so Table 3 can be regenerated and the
scaled-down simulator numbers compared against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capture.scene import Scene, make_scene

__all__ = ["VideoSpec", "PANOPTIC_VIDEOS", "load_video", "video_names"]


@dataclass(frozen=True)
class VideoSpec:
    """Metadata + generator parameters for one evaluation video."""

    name: str
    description: str
    paper_duration_s: int
    num_people: int
    num_props: int
    paper_objects: int
    paper_frame_size_mb: float
    motion_amplitude_m: float
    motion_frequency_hz: float
    seed: int

    def build_scene(self, sample_budget: int = 60_000) -> Scene:
        """Instantiate the procedural scene for this video."""
        scene = make_scene(
            name=self.name,
            num_people=self.num_people,
            num_props=self.num_props,
            motion_amplitude_m=self.motion_amplitude_m,
            motion_frequency_hz=self.motion_frequency_hz,
            sample_budget=sample_budget,
            seed=self.seed,
        )
        return scene


# Table 3 of the paper.  People/prop splits are inferred from the video
# descriptions ("objects include people"); what matters downstream is the
# total object count and motion level.
PANOPTIC_VIDEOS: dict[str, VideoSpec] = {
    "band2": VideoSpec(
        name="band2",
        description="Musical performance",
        paper_duration_s=197,
        num_people=4,
        num_props=5,
        paper_objects=9,
        paper_frame_size_mb=11.1,
        motion_amplitude_m=0.18,
        motion_frequency_hz=0.8,
        seed=11,
    ),
    "dance5": VideoSpec(
        name="dance5",
        description="Dance",
        paper_duration_s=333,
        num_people=1,
        num_props=0,
        paper_objects=1,
        paper_frame_size_mb=10.8,
        motion_amplitude_m=0.35,
        motion_frequency_hz=1.2,
        seed=25,
    ),
    "office1": VideoSpec(
        name="office1",
        description="Person working",
        paper_duration_s=187,
        num_people=2,
        num_props=5,
        paper_objects=7,
        paper_frame_size_mb=10.6,
        motion_amplitude_m=0.06,
        motion_frequency_hz=0.3,
        seed=31,
    ),
    "pizza1": VideoSpec(
        name="pizza1",
        description="Food and party",
        paper_duration_s=47,
        num_people=6,
        num_props=8,
        paper_objects=14,
        paper_frame_size_mb=13.8,
        motion_amplitude_m=0.15,
        motion_frequency_hz=0.7,
        seed=47,
    ),
    "toddler4": VideoSpec(
        name="toddler4",
        description="A child playing games",
        paper_duration_s=127,
        num_people=2,
        num_props=1,
        paper_objects=3,
        paper_frame_size_mb=10.6,
        motion_amplitude_m=0.25,
        motion_frequency_hz=1.0,
        seed=53,
    ),
}


def video_names() -> list[str]:
    """Names of the five evaluation videos, in Table 3 order."""
    return list(PANOPTIC_VIDEOS)


def load_video(name: str, sample_budget: int = 60_000) -> tuple[VideoSpec, Scene]:
    """Look up a video spec and build its scene."""
    try:
        spec = PANOPTIC_VIDEOS[name]
    except KeyError:
        raise KeyError(
            f"unknown video {name!r}; available: {sorted(PANOPTIC_VIDEOS)}"
        ) from None
    return spec, spec.build_scene(sample_budget=sample_budget)
