"""Z-buffer point-splat renderer: scene samples -> per-camera RGB-D images.

This stands in for the physical Kinect sensor: the scene's sampled
surface points are projected through each camera's pinhole model and
splatted into a depth buffer; the nearest point per pixel wins.  Output
is a pixel-aligned color + uint16 millimeter depth pair -- the same
format the Azure Kinect SDK yields after alignment.

The renderer is split into two halves so the kernel-cache layer
(:mod:`repro.perf`) can reuse work across frames:

- :func:`project_splats` -- world points -> visible ``(flat_pixel, z,
  color)`` splat arrays for one camera (pure function of the points);
- :func:`splat_image` -- splat arrays -> the z-buffered, hole-filled
  RGB-D frame.

:class:`ProjectionCache` caches the :func:`project_splats` output of
*static* sample batches per ``(camera, scene epoch)``, merging them with
freshly projected dynamic points each frame.  Because the z-buffer is a
single stable lexsort over the concatenated splat arrays, the cached
path is byte-identical to projecting the full point set from scratch
(asserted in tests/test_kernel_cache.py).
"""

from __future__ import annotations

import numpy as np

from repro.capture.rgbd import MultiViewFrame, RGBDFrame
from repro.capture.scene import SampleBatch
from repro.geometry.camera import RGBDCamera
from repro.perf.counters import CacheCounters

__all__ = [
    "render_rgbd",
    "render_views",
    "fill_holes",
    "fill_holes_batch",
    "project_splats",
    "splat_image",
    "ProjectionCache",
]

# 8-neighborhood offsets for hole filling, hoisted out of the loop: the
# accumulation order below must stay fixed -- float sums are applied in
# this order, and reordering would change low bits of the fill values.
_NEIGHBOR_SHIFTS = tuple(
    (dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1) if (dy, dx) != (0, 0)
)


def fill_holes(
    depth: np.ndarray, color: np.ndarray, iterations: int = 2, min_neighbors: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """Fill small sampling holes from valid 8-neighborhoods.

    Point-splat rendering leaves scattered empty pixels that a real
    time-of-flight sensor would not: Kinect depth maps are dense over
    surfaces.  Each pass fills invalid pixels having at least
    ``min_neighbors`` valid neighbors with the neighbor mean (depth and
    color alike), which restores the piecewise-smooth structure 2D
    codecs rely on.

    The padded planes and accumulators are allocated once and reused
    across iterations; the borders of the padded buffers stay zero
    (equivalent to ``np.pad``'s constant fill), so the output is
    identical to re-padding every pass.
    """
    depth = depth.astype(np.float64)
    color = color.astype(np.float64)
    height, width = depth.shape

    neighbor_count = np.empty((height, width))
    depth_sum = np.empty((height, width))
    color_sum = np.empty(color.shape)
    padded_depth = np.zeros((height + 2, width + 2))
    padded_color = np.zeros((height + 2, width + 2, color.shape[2]))
    padded_valid = np.zeros((height + 2, width + 2), dtype=bool)

    for _ in range(iterations):
        valid = depth > 0
        if valid.all():
            break
        neighbor_count.fill(0.0)
        depth_sum.fill(0.0)
        color_sum.fill(0.0)
        padded_depth[1:-1, 1:-1] = depth
        padded_color[1:-1, 1:-1] = color
        padded_valid[1:-1, 1:-1] = valid
        for dy, dx in _NEIGHBOR_SHIFTS:
            window = (slice(1 + dy, 1 + dy + height), slice(1 + dx, 1 + dx + width))
            neighbor_valid = padded_valid[window]
            neighbor_count += neighbor_valid
            depth_sum += padded_depth[window] * neighbor_valid
            color_sum += padded_color[window] * neighbor_valid[..., None]
        fill = (~valid) & (neighbor_count >= min_neighbors)
        if not fill.any():
            break
        depth[fill] = depth_sum[fill] / neighbor_count[fill]
        color[fill] = color_sum[fill] / neighbor_count[fill][:, None]
    return (
        np.clip(np.rint(depth), 0, 65535).astype(np.uint16),
        np.clip(np.rint(color), 0, 255).astype(np.uint8),
    )


def fill_holes_batch(
    depths: np.ndarray, colors: np.ndarray, iterations: int = 2, min_neighbors: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`fill_holes` over a ``(N, H, W)`` stack of images at once.

    Bit-identical to filling each image separately: the neighbor shifts
    slide only along the spatial axes (each image keeps its own zero
    border in the padded stack, so images never bleed into each other),
    the eight accumulations run in the same fixed order per pixel, and
    the early-exit checks merely become batch-global -- an image that
    would have converged early sees extra no-op passes (its fill mask
    is empty, so nothing is written).  One camera rig's worth of images
    per call replaces N Python-level passes with one.
    """
    depths = depths.astype(np.float64)
    colors = colors.astype(np.float64)
    count, height, width = depths.shape

    neighbor_count = np.empty((count, height, width))
    depth_sum = np.empty((count, height, width))
    color_sum = np.empty(colors.shape)
    padded_depth = np.zeros((count, height + 2, width + 2))
    padded_color = np.zeros((count, height + 2, width + 2, colors.shape[3]))
    padded_valid = np.zeros((count, height + 2, width + 2), dtype=bool)

    for _ in range(iterations):
        valid = depths > 0
        if valid.all():
            break
        neighbor_count.fill(0.0)
        depth_sum.fill(0.0)
        color_sum.fill(0.0)
        padded_depth[:, 1:-1, 1:-1] = depths
        padded_color[:, 1:-1, 1:-1] = colors
        padded_valid[:, 1:-1, 1:-1] = valid
        for dy, dx in _NEIGHBOR_SHIFTS:
            window = (
                slice(None),
                slice(1 + dy, 1 + dy + height),
                slice(1 + dx, 1 + dx + width),
            )
            neighbor_valid = padded_valid[window]
            neighbor_count += neighbor_valid
            depth_sum += padded_depth[window] * neighbor_valid
            color_sum += padded_color[window] * neighbor_valid[..., None]
        fill = (~valid) & (neighbor_count >= min_neighbors)
        if not fill.any():
            break
        depths[fill] = depth_sum[fill] / neighbor_count[fill]
        colors[fill] = color_sum[fill] / neighbor_count[fill][:, None]
    return (
        np.clip(np.rint(depths), 0, 65535).astype(np.uint16),
        np.clip(np.rint(colors), 0, 255).astype(np.uint8),
    )


def project_splats(
    camera: RGBDCamera, points: np.ndarray, colors: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project world points into one camera's visible splat arrays.

    Returns ``(flat, z, colors)`` for the visible subset only: flattened
    pixel index, camera-local depth in meters, and the point colors.
    Points outside the camera's depth range or image bounds are dropped
    (a real time-of-flight sensor reports them as invalid / zero depth).
    """
    height = camera.intrinsics.height
    width = camera.intrinsics.width
    u, v, z = camera.project(points)

    in_range = (z >= camera.min_depth_m) & (z <= camera.max_depth_m)
    ui = np.floor(u).astype(np.int64)
    vi = np.floor(v).astype(np.int64)
    visible = in_range & (ui >= 0) & (ui < width) & (vi >= 0) & (vi < height)

    ui = ui[visible]
    vi = vi[visible]
    flat = vi * width + ui
    return flat, z[visible], np.asarray(colors)[visible]


def splat_image(
    camera: RGBDCamera,
    flat: np.ndarray,
    z: np.ndarray,
    colors: np.ndarray,
    background_color: int = 0,
    hole_fill_iterations: int = 2,
) -> tuple[np.ndarray, np.ndarray]:
    """Z-buffer splat arrays into a ``(color, depth)`` image pair.

    The splat order only matters through the stable lexsort, so any
    concatenation of :func:`project_splats` outputs that preserves the
    original point order produces identical images.
    """
    height = camera.intrinsics.height
    width = camera.intrinsics.width
    depth = np.zeros((height, width), dtype=np.uint16)
    color = np.full((height, width, 3), background_color, dtype=np.uint8)

    if len(flat):
        # Z-buffer via sort: order by pixel then descending depth, so the
        # last write per pixel is the nearest point.
        order = np.lexsort((-z, flat))
        flat = flat[order]
        zv = z[order]
        cv = colors[order]

        depth_flat = depth.reshape(-1)
        color_flat = color.reshape(-1, 3)
        depth_flat[flat] = np.clip(np.rint(zv * 1000.0), 1, 65535).astype(np.uint16)
        color_flat[flat] = cv
        if hole_fill_iterations > 0:
            depth, color = fill_holes(depth, color, iterations=hole_fill_iterations)
    return depth, color


def render_rgbd(
    camera: RGBDCamera,
    points: np.ndarray,
    colors: np.ndarray,
    sequence: int = 0,
    timestamp_s: float = 0.0,
    background_color: int = 0,
    hole_fill_iterations: int = 2,
) -> RGBDFrame:
    """Render world-space colored points into one camera's RGB-D frame.

    Points outside the camera's depth range or image bounds are dropped
    (a real time-of-flight sensor reports them as invalid / zero depth).
    Small sampling holes are filled (see :func:`fill_holes`) to match
    the dense output of a real depth sensor.
    """
    flat, z, visible_colors = project_splats(camera, points, colors)
    depth, color = splat_image(
        camera,
        flat,
        z,
        visible_colors,
        background_color=background_color,
        hole_fill_iterations=hole_fill_iterations,
    )
    return RGBDFrame(
        color, depth, camera_id=camera.camera_id, sequence=sequence, timestamp_s=timestamp_s
    )


def render_views(
    cameras: list[RGBDCamera],
    points: np.ndarray,
    colors: np.ndarray,
    sequence: int = 0,
    timestamp_s: float = 0.0,
) -> MultiViewFrame:
    """Render the same world sample set through every camera in a rig."""
    views = [
        render_rgbd(camera, points, colors, sequence=sequence, timestamp_s=timestamp_s)
        for camera in cameras
    ]
    return MultiViewFrame(views, sequence=sequence, timestamp_s=timestamp_s)


class ProjectionCache:
    """Per-camera splat cache for incremental capture.

    Static sample batches (:class:`~repro.capture.scene.SampleBatch`
    with ``static=True``) are projected through the camera once and
    their visible ``(flat, z, color)`` arrays cached, keyed by
    ``(batch key, scene epoch, batch size)``; dynamic batches are
    projected fresh every frame.

    On top of the per-batch splat cache sits a *static z-buffer image*:
    the static splats pre-resolved to their per-pixel winner, cached
    per scene epoch.  Each frame then only projects and sorts the
    dynamic splats and merges their per-pixel winners into a copy of
    the static image.

    Byte-identity argument: the full render's winner at a pixel is the
    splat with minimum ``z``, ties broken toward the *largest index* in
    the batch-order concatenation (stable lexsort + last-write-wins).
    Encoding each splat's ``(batch position, within-batch index)`` as a
    single integer rank reproduces that total order exactly -- batch
    sizes never reorder across frames, so an earlier batch always means
    a smaller concatenation index.  Restricting a max to the static
    subset first and comparing the two subset winners under the same
    ``(z, rank)`` comparator selects the same global winner, so the
    merged image equals the full lexsort z-buffer bit for bit (asserted
    against :func:`render_rgbd` in the parity suite).
    """

    # Rank stride: batch position in the high bits, within-batch index
    # in the low 32.  Sample budgets are far below 2**32 points.
    _RANK_STRIDE = np.int64(1) << 32

    def __init__(self, camera: RGBDCamera) -> None:
        self.camera = camera
        self._static: dict[tuple[str, int, int], tuple] = {}
        self._image_key: tuple | None = None
        self._image: tuple | None = None
        self.counters = CacheCounters(f"projection[cam{camera.camera_id}]")

    def batch_splats(
        self, batch: SampleBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Visible splat arrays for one batch, cached when static."""
        if not batch.static:
            return project_splats(self.camera, batch.points, batch.colors)
        key = (batch.key, batch.epoch, len(batch.points))
        cached = self._static.get(key)
        if cached is not None:
            self.counters.hit()
            return cached
        self.counters.miss()
        flat, z, colors = project_splats(self.camera, batch.points, batch.colors)
        for array in (flat, z, colors):
            array.setflags(write=False)
        # A scene edit changes the epoch in the key; drop stale entries
        # for the same batch so the cache stays one-entry-per-batch.
        for stale in [k for k in self._static if k[0] == batch.key and k != key]:
            del self._static[stale]
        self._static[key] = (flat, z, colors)
        return flat, z, colors

    def _static_image(
        self, batches: list[SampleBatch], background_color: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The static splats resolved to flat per-pixel winner images.

        Returns ``(z, rank, depth, color)`` flat arrays of ``height *
        width`` entries: winner depth in meters (+inf where no static
        splat lands), its concatenation rank (-1 where empty), and the
        quantized depth/color exactly as the full scatter would write
        them.  Cached until the static batch set changes (scene epoch
        bump, scene edit, or a different background color).
        """
        static = [(pos, b) for pos, b in enumerate(batches) if b.static]
        key = (
            tuple((pos, b.key, b.epoch, len(b.points)) for pos, b in static),
            background_color,
        )
        if key == self._image_key:
            for _ in static:
                self.counters.hit()
            return self._image

        num_pixels = self.camera.intrinsics.height * self.camera.intrinsics.width
        z_image = np.full(num_pixels, np.inf)
        rank_image = np.full(num_pixels, -1, dtype=np.int64)
        depth_image = np.zeros(num_pixels, dtype=np.uint16)
        color_image = np.full((num_pixels, 3), background_color, dtype=np.uint8)
        parts = []
        for pos, batch in static:
            flat, z, colors = self.batch_splats(batch)
            rank = np.int64(pos) * self._RANK_STRIDE + np.arange(
                len(flat), dtype=np.int64
            )
            parts.append((flat, z, colors, rank))
        if parts:
            flat = np.concatenate([p[0] for p in parts])
            z = np.concatenate([p[1] for p in parts])
            colors = np.concatenate([p[2] for p in parts])
            rank = np.concatenate([p[3] for p in parts])
            # Ascending (pixel, -z, rank): the last write per pixel is
            # the nearest splat, ties to the largest rank -- identical
            # to the stable ``lexsort((-z, flat))`` winner because rank
            # increases with concatenation order.
            order = np.lexsort((rank, -z, flat))
            flat, z, colors, rank = flat[order], z[order], colors[order], rank[order]
            z_image[flat] = z
            rank_image[flat] = rank
            depth_image[flat] = np.clip(np.rint(z * 1000.0), 1, 65535).astype(np.uint16)
            color_image[flat] = colors
        for array in (z_image, rank_image, depth_image, color_image):
            array.setflags(write=False)
        self._image_key = key
        self._image = (z_image, rank_image, depth_image, color_image)
        return self._image

    def render_arrays(
        self,
        batches: list[SampleBatch],
        background_color: int = 0,
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Z-buffered but *unfilled* ``(depth, color, needs_fill)`` arrays.

        The raw render half of :meth:`render`: callers that batch the
        hole filling across cameras (:func:`fill_holes_batch`) take the
        arrays here and fill a whole rig's stack in one pass.
        ``needs_fill`` mirrors the scalar path's skip condition (no
        splats at all means nothing to fill).
        """
        height = self.camera.intrinsics.height
        width = self.camera.intrinsics.width
        static_z, static_rank, static_depth, static_color = self._static_image(
            batches, background_color
        )
        depth = static_depth.copy()
        color = static_color.copy()

        parts = []
        for pos, batch in enumerate(batches):
            if batch.static:
                continue
            flat, z, colors = self.batch_splats(batch)
            rank = np.int64(pos) * self._RANK_STRIDE + np.arange(
                len(flat), dtype=np.int64
            )
            parts.append((flat, z, colors, rank))
        if parts:
            flat = np.concatenate([p[0] for p in parts])
            z = np.concatenate([p[1] for p in parts])
            colors = np.concatenate([p[2] for p in parts])
            rank = np.concatenate([p[3] for p in parts])
            order = np.lexsort((rank, -z, flat))
            flat, z, colors, rank = flat[order], z[order], colors[order], rank[order]
            # Reduce the dynamic splats to their per-pixel winner (the
            # last entry of each equal-pixel run), then race each winner
            # against the static winner under the same (z, rank) order.
            last = np.ones(len(flat), dtype=bool)
            last[:-1] = flat[1:] != flat[:-1]
            flat, z, colors, rank = flat[last], z[last], colors[last], rank[last]
            zs = static_z[flat]
            wins = (z < zs) | ((z == zs) & (rank > static_rank[flat]))
            flat, z, colors = flat[wins], z[wins], colors[wins]
            depth[flat] = np.clip(np.rint(z * 1000.0), 1, 65535).astype(np.uint16)
            color[flat] = colors

        depth = depth.reshape(height, width)
        color = color.reshape(height, width, 3)
        needs_fill = bool(len(parts) or self._image_key[0])
        return depth, color, needs_fill

    def render(
        self,
        batches: list[SampleBatch],
        sequence: int = 0,
        timestamp_s: float = 0.0,
        background_color: int = 0,
        hole_fill_iterations: int = 2,
    ) -> RGBDFrame:
        """Render sample batches through this camera, reusing static splats."""
        depth, color, needs_fill = self.render_arrays(batches, background_color)
        if hole_fill_iterations > 0 and needs_fill:
            depth, color = fill_holes(depth, color, iterations=hole_fill_iterations)
        return RGBDFrame(
            color,
            depth,
            camera_id=self.camera.camera_id,
            sequence=sequence,
            timestamp_s=timestamp_s,
        )
