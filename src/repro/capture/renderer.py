"""Z-buffer point-splat renderer: scene samples -> per-camera RGB-D images.

This stands in for the physical Kinect sensor: the scene's sampled
surface points are projected through each camera's pinhole model and
splatted into a depth buffer; the nearest point per pixel wins.  Output
is a pixel-aligned color + uint16 millimeter depth pair -- the same
format the Azure Kinect SDK yields after alignment.
"""

from __future__ import annotations

import numpy as np

from repro.capture.rgbd import MultiViewFrame, RGBDFrame
from repro.geometry.camera import RGBDCamera

__all__ = ["render_rgbd", "render_views", "fill_holes"]


def fill_holes(
    depth: np.ndarray, color: np.ndarray, iterations: int = 2, min_neighbors: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """Fill small sampling holes from valid 8-neighborhoods.

    Point-splat rendering leaves scattered empty pixels that a real
    time-of-flight sensor would not: Kinect depth maps are dense over
    surfaces.  Each pass fills invalid pixels having at least
    ``min_neighbors`` valid neighbors with the neighbor mean (depth and
    color alike), which restores the piecewise-smooth structure 2D
    codecs rely on.
    """
    depth = depth.astype(np.float64)
    color = color.astype(np.float64)
    for _ in range(iterations):
        valid = depth > 0
        if valid.all():
            break
        shifts = [
            (dy, dx)
            for dy in (-1, 0, 1)
            for dx in (-1, 0, 1)
            if (dy, dx) != (0, 0)
        ]
        neighbor_count = np.zeros(depth.shape)
        depth_sum = np.zeros(depth.shape)
        color_sum = np.zeros(color.shape)
        padded_depth = np.pad(depth, 1)
        padded_color = np.pad(color, ((1, 1), (1, 1), (0, 0)))
        padded_valid = np.pad(valid, 1)
        height, width = depth.shape
        for dy, dx in shifts:
            window = (slice(1 + dy, 1 + dy + height), slice(1 + dx, 1 + dx + width))
            neighbor_valid = padded_valid[window]
            neighbor_count += neighbor_valid
            depth_sum += padded_depth[window] * neighbor_valid
            color_sum += padded_color[window] * neighbor_valid[..., None]
        fill = (~valid) & (neighbor_count >= min_neighbors)
        if not fill.any():
            break
        depth[fill] = depth_sum[fill] / neighbor_count[fill]
        color[fill] = color_sum[fill] / neighbor_count[fill][:, None]
    return (
        np.clip(np.rint(depth), 0, 65535).astype(np.uint16),
        np.clip(np.rint(color), 0, 255).astype(np.uint8),
    )


def render_rgbd(
    camera: RGBDCamera,
    points: np.ndarray,
    colors: np.ndarray,
    sequence: int = 0,
    timestamp_s: float = 0.0,
    background_color: int = 0,
    hole_fill_iterations: int = 2,
) -> RGBDFrame:
    """Render world-space colored points into one camera's RGB-D frame.

    Points outside the camera's depth range or image bounds are dropped
    (a real time-of-flight sensor reports them as invalid / zero depth).
    Small sampling holes are filled (see :func:`fill_holes`) to match
    the dense output of a real depth sensor.
    """
    height = camera.intrinsics.height
    width = camera.intrinsics.width
    u, v, z = camera.project(points)

    in_range = (z >= camera.min_depth_m) & (z <= camera.max_depth_m)
    ui = np.floor(u).astype(np.int64)
    vi = np.floor(v).astype(np.int64)
    visible = in_range & (ui >= 0) & (ui < width) & (vi >= 0) & (vi < height)

    depth = np.zeros((height, width), dtype=np.uint16)
    color = np.full((height, width, 3), background_color, dtype=np.uint8)

    if visible.any():
        ui = ui[visible]
        vi = vi[visible]
        zv = z[visible]
        cv = np.asarray(colors)[visible]

        # Z-buffer via sort: order by pixel then descending depth, so the
        # last write per pixel is the nearest point.
        flat = vi * width + ui
        order = np.lexsort((-zv, flat))
        flat = flat[order]
        zv = zv[order]
        cv = cv[order]

        depth_flat = depth.reshape(-1)
        color_flat = color.reshape(-1, 3)
        depth_flat[flat] = np.clip(np.rint(zv * 1000.0), 1, 65535).astype(np.uint16)
        color_flat[flat] = cv
        if hole_fill_iterations > 0:
            depth, color = fill_holes(depth, color, iterations=hole_fill_iterations)

    return RGBDFrame(
        color, depth, camera_id=camera.camera_id, sequence=sequence, timestamp_s=timestamp_s
    )


def render_views(
    cameras: list[RGBDCamera],
    points: np.ndarray,
    colors: np.ndarray,
    sequence: int = 0,
    timestamp_s: float = 0.0,
) -> MultiViewFrame:
    """Render the same world sample set through every camera in a rig."""
    views = [
        render_rgbd(camera, points, colors, sequence=sequence, timestamp_s=timestamp_s)
        for camera in cameras
    ]
    return MultiViewFrame(views, sequence=sequence, timestamp_s=timestamp_s)
