"""RGB-D frame containers.

An :class:`RGBDFrame` is one camera's output for one capture instant:
a color image and a pixel-aligned depth image (uint16 millimeters, zero
for invalid pixels), exactly the format the Azure Kinect SDK exposes
after color-to-depth alignment.  A :class:`MultiViewFrame` bundles the
N synchronized per-camera frames that together define one point cloud
(paper section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RGBDFrame", "MultiViewFrame"]


@dataclass
class RGBDFrame:
    """One camera's synchronized color + depth capture.

    Attributes:
        color: ``(H, W, 3)`` uint8 RGB image, pixel-aligned with depth.
        depth_mm: ``(H, W)`` uint16 depth in millimeters; 0 = invalid.
        camera_id: index of the producing camera in the rig.
        sequence: frame sequence number (30 fps capture clock).
        timestamp_s: capture time in seconds.
    """

    color: np.ndarray
    depth_mm: np.ndarray
    camera_id: int = 0
    sequence: int = 0
    timestamp_s: float = 0.0

    def __post_init__(self) -> None:
        self.color = np.asarray(self.color, dtype=np.uint8)
        self.depth_mm = np.asarray(self.depth_mm, dtype=np.uint16)
        if self.color.ndim != 3 or self.color.shape[2] != 3:
            raise ValueError(f"color must be (H, W, 3), got {self.color.shape}")
        if self.depth_mm.shape != self.color.shape[:2]:
            raise ValueError(
                f"depth shape {self.depth_mm.shape} must match color "
                f"{self.color.shape[:2]}"
            )

    @property
    def resolution(self) -> tuple[int, int]:
        """(height, width)."""
        return self.depth_mm.shape  # type: ignore[return-value]

    @property
    def valid_mask(self) -> np.ndarray:
        """Boolean mask of pixels with a valid depth reading."""
        return self.depth_mm > 0

    def num_valid_pixels(self) -> int:
        """Count of valid-depth pixels (points this frame contributes)."""
        return int(np.count_nonzero(self.depth_mm))

    def copy(self) -> "RGBDFrame":
        """Deep copy."""
        return RGBDFrame(
            self.color.copy(),
            self.depth_mm.copy(),
            camera_id=self.camera_id,
            sequence=self.sequence,
            timestamp_s=self.timestamp_s,
        )

    def culled(self, keep_mask: np.ndarray) -> "RGBDFrame":
        """Return a copy with pixels outside ``keep_mask`` zeroed.

        LiVo "replace[s] culled pixels with a zero value (both for color
        and depth)" (section 3.4).  Zeroed regions compress to almost
        nothing under the 2D codec, which is where culling's bandwidth
        saving comes from.
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape != self.depth_mm.shape:
            raise ValueError("mask shape must match frame resolution")
        color = np.where(keep_mask[..., None], self.color, 0).astype(np.uint8)
        depth = np.where(keep_mask, self.depth_mm, 0).astype(np.uint16)
        return RGBDFrame(
            color, depth, camera_id=self.camera_id, sequence=self.sequence,
            timestamp_s=self.timestamp_s,
        )


@dataclass
class MultiViewFrame:
    """The N synchronized per-camera frames for one capture instant."""

    views: list[RGBDFrame]
    sequence: int = 0
    timestamp_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.views:
            raise ValueError("a MultiViewFrame needs at least one view")
        resolutions = {view.resolution for view in self.views}
        if len(resolutions) != 1:
            raise ValueError(f"all views must share one resolution, got {resolutions}")

    def __len__(self) -> int:
        return len(self.views)

    @property
    def num_cameras(self) -> int:
        """Number of camera views."""
        return len(self.views)

    @property
    def resolution(self) -> tuple[int, int]:
        """Per-camera (height, width)."""
        return self.views[0].resolution

    def raw_size_bytes(self) -> int:
        """Size of the frame's raw point cloud (15 bytes per valid pixel)."""
        return sum(view.num_valid_pixels() for view in self.views) * 15

    def total_points(self) -> int:
        """Total number of valid-depth pixels across views."""
        return sum(view.num_valid_pixels() for view in self.views)
