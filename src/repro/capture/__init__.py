"""Capture substrate: synthetic RGB-D camera array and dataset.

The paper captures with 10 Kinect v2 cameras (Panoptic dataset) /
Azure Kinect DK arrays.  We have no cameras, so this package builds the
closest synthetic equivalent: procedural animated 3D scenes rendered to
pixel-aligned RGB-D images through the same pinhole projection a Kinect
applies.  Downstream code (tiling, encoding, culling, reconstruction)
sees exactly the data layout real hardware would produce.
"""

from repro.capture.dataset import PANOPTIC_VIDEOS, VideoSpec, load_video
from repro.capture.renderer import render_rgbd
from repro.capture.rgbd import MultiViewFrame, RGBDFrame
from repro.capture.rig import CaptureRig, default_rig
from repro.capture.scene import Scene, make_scene

__all__ = [
    "PANOPTIC_VIDEOS",
    "VideoSpec",
    "load_video",
    "render_rgbd",
    "MultiViewFrame",
    "RGBDFrame",
    "CaptureRig",
    "default_rig",
    "Scene",
    "make_scene",
]
