"""The RGB-D capture rig: N calibrated cameras + 30 fps capture clock.

Models the paper's deployment: "an array of off-the-shelf RGB-D cameras
encircling a scene" (section 3.1), frame-synchronized (Kinect sync cable,
footnote 1) and one-shot calibrated into a common world frame (Zhang's
method).  Our cameras are calibrated exactly by construction; the rig
exposes the same per-interval capture of N synchronized frames.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.capture.renderer import render_views
from repro.capture.rgbd import MultiViewFrame
from repro.capture.scene import Scene
from repro.geometry.camera import CameraIntrinsics, RGBDCamera, ring_of_cameras

__all__ = ["CaptureRig", "default_rig", "DEFAULT_FPS"]

DEFAULT_FPS = 30.0


class CaptureRig:
    """N synchronized RGB-D cameras capturing a scene at a fixed frame rate."""

    def __init__(self, cameras: list[RGBDCamera], fps: float = DEFAULT_FPS) -> None:
        if not cameras:
            raise ValueError("a rig needs at least one camera")
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.cameras = list(cameras)
        self.fps = float(fps)

    @property
    def num_cameras(self) -> int:
        """Number of cameras in the rig."""
        return len(self.cameras)

    @property
    def frame_interval_s(self) -> float:
        """Inter-frame interval (1/30 s at 30 fps)."""
        return 1.0 / self.fps

    def capture(self, scene: Scene, sequence: int) -> MultiViewFrame:
        """Capture one synchronized multi-view frame of ``scene``."""
        timestamp = sequence * self.frame_interval_s
        points, colors = scene.sample(timestamp)
        return render_views(
            self.cameras, points, colors, sequence=sequence, timestamp_s=timestamp
        )

    def stream(self, scene: Scene, num_frames: int, start: int = 0) -> Iterator[MultiViewFrame]:
        """Yield ``num_frames`` consecutive captures starting at ``start``."""
        for sequence in range(start, start + num_frames):
            yield self.capture(scene, sequence)


def default_rig(
    num_cameras: int = 10,
    width: int = 80,
    height: int = 60,
    radius_m: float = 2.4,
    camera_height_m: float = 1.4,
    fps: float = DEFAULT_FPS,
) -> CaptureRig:
    """Ten-camera ring, mirroring the Panoptic dataset's Kinect v2 setup.

    Default per-camera resolution is scaled down (80x60 instead of
    512x424) so full end-to-end sessions run in seconds; every dimension
    scales linearly, and all benches document the scaling they apply.
    """
    intrinsics = CameraIntrinsics.from_fov(width, height, horizontal_fov_deg=75.0)
    cameras = ring_of_cameras(
        num_cameras=num_cameras,
        radius_m=radius_m,
        height_m=camera_height_m,
        intrinsics=intrinsics,
    )
    return CaptureRig(cameras, fps=fps)
