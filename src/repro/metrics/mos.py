"""User-study substitute: a QoE model mapping measurements to MOS.

The paper's user study (section 4.2) is IRB-gated human data we cannot
re-run, so -- per the reproduction's substitution rule -- we model it
explicitly.  The paper itself observes that its subjective results track
its objective results ("These results are consistent with our objective
evaluation, section 4.3"), so the model is a calibrated mapping

    MOS = clip(1 + a*(PSSIM_geom - floor) + b*(PSSIM_color - floor)
                 - c*stall_rate - d*(30 - fps)/30,  1, 5)

with coefficients anchored so the paper's four scheme-level outcomes
(LiVo 4.1, LiVo-NoCull 3.4, MeshReduce 2.5, Draco-Oracle 1.5) are
reproduced from their measured objective inputs.  Individual Likert
ratings add rater noise and rounding; the comment model (Table 5)
classifies the same measurements into frame-rate / stall / quality
comment categories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SessionQoE", "MOSModel", "CommentModel"]


@dataclass(frozen=True)
class SessionQoE:
    """The objective measurements a rating is derived from."""

    pssim_geometry: float
    pssim_color: float
    stall_rate: float
    mean_fps: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.stall_rate <= 1.0:
            raise ValueError("stall_rate must be in [0, 1]")
        if self.mean_fps < 0:
            raise ValueError("mean_fps must be non-negative")


class MOSModel:
    """Objective measurements -> mean opinion score on the 1-5 Likert scale."""

    def __init__(
        self,
        geometry_gain: float = 0.036,
        color_gain: float = 0.010,
        stall_penalty: float = 3.0,
        fps_penalty: float = 1.5,
        quality_floor: float = 20.0,
        rater_noise: float = 0.6,
    ) -> None:
        self.geometry_gain = geometry_gain
        self.color_gain = color_gain
        self.stall_penalty = stall_penalty
        self.fps_penalty = fps_penalty
        self.quality_floor = quality_floor
        self.rater_noise = rater_noise

    def mean_opinion_score(self, qoe: SessionQoE) -> float:
        """Deterministic model MOS for a session's measurements."""
        score = (
            1.0
            + self.geometry_gain * max(qoe.pssim_geometry - self.quality_floor, 0.0)
            + self.color_gain * max(qoe.pssim_color - self.quality_floor, 0.0)
            - self.stall_penalty * qoe.stall_rate
            - self.fps_penalty * max(30.0 - qoe.mean_fps, 0.0) / 30.0
        )
        return float(np.clip(score, 1.0, 5.0))

    def sample_ratings(self, qoe: SessionQoE, num_raters: int, seed: int = 0) -> np.ndarray:
        """Simulated Likert ratings: model MOS + rater noise, rounded.

        The paper collected 57 ratings per scheme over 20 participants.
        """
        if num_raters <= 0:
            raise ValueError("num_raters must be positive")
        rng = np.random.default_rng(seed)
        mos = self.mean_opinion_score(qoe)
        ratings = rng.normal(mos, self.rater_noise, size=num_raters)
        return np.clip(np.rint(ratings), 1, 5).astype(int)


class CommentModel:
    """Table 5's comment categories from the same objective measurements.

    Maps a session's measurements to the probability of a participant's
    free-form comment rating frame rate / stalls / quality as Low,
    Medium, or High, then samples comment counts.
    """

    @staticmethod
    def _bucket_probabilities(value: float, low_cut: float, high_cut: float) -> np.ndarray:
        """Soft three-bucket assignment around two thresholds."""
        span = max(high_cut - low_cut, 1e-9)
        position = (value - low_cut) / span  # <0 low, >1 high
        high = float(np.clip(position, 0.0, 1.0))
        low = float(np.clip(1.0 - position, 0.0, 1.0))
        # Smooth the middle mass.
        middle = max(1.0 - abs(2.0 * position - 1.0), 0.0)
        raw = np.array([low, middle, high])
        return raw / raw.sum()

    def frame_rate_probabilities(self, qoe: SessionQoE) -> np.ndarray:
        """P(comment rates frame rate Low/Medium/High)."""
        return self._bucket_probabilities(qoe.mean_fps, 12.0, 29.0)

    def stall_probabilities(self, qoe: SessionQoE) -> np.ndarray:
        """P(comment rates stalls Low/Medium/High). High = many stalls."""
        return self._bucket_probabilities(qoe.stall_rate, 0.02, 0.4)

    def quality_probabilities(self, qoe: SessionQoE) -> np.ndarray:
        """P(comment rates quality Low/Medium/High)."""
        return self._bucket_probabilities(qoe.pssim_geometry, 55.0, 86.0)

    def sample_comments(
        self, qoe: SessionQoE, num_comments: int, seed: int = 0
    ) -> dict[str, np.ndarray]:
        """Sampled L/M/H counts per category for ``num_comments`` comments."""
        if num_comments <= 0:
            raise ValueError("num_comments must be positive")
        rng = np.random.default_rng(seed)
        return {
            "frame_rate": rng.multinomial(num_comments, self.frame_rate_probabilities(qoe)),
            "stalls": rng.multinomial(num_comments, self.stall_probabilities(qoe)),
            "quality": rng.multinomial(num_comments, self.quality_probabilities(qoe)),
        }
