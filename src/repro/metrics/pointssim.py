"""PointSSIM: structural 3D quality for colored point clouds.

Follows Alexiou & Ebrahimi's PointSSIM structure, which the paper
adopts because "it can measure both geometry and color distortions by
directly extending the popular SSIM metric to 3D" (section 2):

1. for every point, compute a *local feature* over its k-nearest
   neighborhood -- the dispersion (variance) of neighbor distances for
   geometry, the luminance statistics for color;
2. associate each point of one cloud with its nearest neighbor in the
   other and compare the feature maps with an SSIM-style ratio
   ``1 - |fa - fb| / max(|fa|, |fb|)``;
3. pool symmetrically (both directions) into a single score.

As in the paper's usage, scores are reported on a 0-100 scale where
"values in the high 80s or above are generally considered good".  The
geometry score additionally folds in a normalized point-to-point
proximity term so rigid drifts (which leave local dispersion intact)
are still penalized.

The metric is split into :func:`precompute_features` (the expensive
half: KD-tree build + k-NN feature extraction, ~O(n log n)) and
:func:`pointssim_from_features` (the comparison half), so a cloud
scored more than once -- a reference against several baselines, both
directions of the symmetric pooling -- builds its features exactly
once.  :func:`pointssim` remains the one-shot entry point and accepts
an optional :class:`~repro.perf.features.FeatureCache`; with a cache
the scores are bit-for-bit identical because the cached features are
the same arrays the uncached path would compute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.pointcloud import PointCloud

__all__ = [
    "PSSIMResult",
    "CloudFeatures",
    "precompute_features",
    "pointssim_from_features",
    "stratified_subsample",
    "pointssim",
    "pointssim_batch",
]

_LUMA = np.array([0.299, 0.587, 0.114])


@dataclass(frozen=True)
class PSSIMResult:
    """Separate geometry and color quality scores, 0-100."""

    geometry: float
    color: float


@dataclass(frozen=True)
class CloudFeatures:
    """Everything PointSSIM needs from one cloud, computed once.

    ``geometry``/``color`` are the per-point local features, ``tree``
    the KD-tree over ``positions`` used for cross-cloud association,
    and ``lo``/``hi`` the cloud bounds (the reference's bbox diagonal
    sets the default proximity scale).
    """

    positions: np.ndarray
    geometry: np.ndarray
    color: np.ndarray
    tree: cKDTree
    lo: np.ndarray
    hi: np.ndarray
    k: int

    @property
    def num_points(self) -> int:
        return len(self.positions)


def _luminance(colors: np.ndarray) -> np.ndarray:
    return colors.astype(np.float64) @ _LUMA


def _local_features(
    positions: np.ndarray, luminance: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, cKDTree]:
    """Per-point neighborhood features: distance dispersion + mean luma."""
    tree = cKDTree(positions)
    neighbors = min(k + 1, len(positions))
    distances, indices = tree.query(positions, k=neighbors)
    if neighbors == 1:
        distances = distances[:, None]
        indices = indices[:, None]
    # Drop self (first column).
    neighbor_distances = distances[:, 1:] if distances.shape[1] > 1 else distances
    # Mean neighbor distance: a stable local-structure estimator (the
    # variance estimator PointSSIM also offers is far noisier on sparse
    # clouds and would dominate the score with sampling noise).
    geometry_feature = neighbor_distances.mean(axis=1)
    color_feature = luminance[indices].mean(axis=1)
    return geometry_feature, color_feature, tree


def _feature_similarity(fa: np.ndarray, fb: np.ndarray) -> np.ndarray:
    denominator = np.maximum(np.abs(fa), np.abs(fb))
    similarity = np.ones_like(fa)
    nonzero = denominator > 1e-12
    similarity[nonzero] = 1.0 - np.abs(fa[nonzero] - fb[nonzero]) / denominator[nonzero]
    return np.clip(similarity, 0.0, 1.0)


def precompute_features(cloud: PointCloud, k: int = 9) -> CloudFeatures:
    """Build a cloud's reusable PointSSIM features (the expensive half)."""
    if cloud.is_empty:
        raise ValueError("cannot precompute features of an empty cloud")
    geometry, color, tree = _local_features(
        cloud.positions, _luminance(cloud.colors), k
    )
    lo, hi = cloud.bounds()
    return CloudFeatures(
        positions=cloud.positions,
        geometry=geometry,
        color=color,
        tree=tree,
        lo=lo,
        hi=hi,
        k=k,
    )


def pointssim_from_features(
    reference: CloudFeatures,
    distorted: CloudFeatures,
    proximity_scale: float | None = None,
) -> PSSIMResult:
    """PointSSIM from precomputed features (the comparison half).

    Identical float math to :func:`pointssim` on the same clouds --
    the features *are* the intermediates the one-shot path computes.
    """
    diagonal = float(np.linalg.norm(reference.hi - reference.lo))
    if proximity_scale is None:
        proximity_scale = max(diagonal * 0.015, 1e-6)

    scores_geometry = []
    scores_color = []
    for a, b in ((reference, distorted), (distorted, reference)):
        nn_distance, nn_index = b.tree.query(a.positions)
        geometry_similarity = _feature_similarity(a.geometry, b.geometry[nn_index])
        # Gaussian proximity: errors well below the scale (e.g. voxel
        # jitter) barely register; errors beyond it are punished hard.
        proximity = np.exp(-((nn_distance / proximity_scale) ** 2))
        scores_geometry.append(float((geometry_similarity * proximity).mean()))
        color_similarity = _feature_similarity(a.color, b.color[nn_index])
        scores_color.append(float(color_similarity.mean()))

    return PSSIMResult(
        geometry=100.0 * float(np.mean(scores_geometry)),
        color=100.0 * float(np.mean(scores_color)),
    )


def stratified_subsample(
    cloud: PointCloud, max_points: int, seed: int = 0
) -> PointCloud:
    """Deterministic stratified subsample down to ``max_points``.

    The index range is split into ``max_points`` equal strata and one
    seeded-uniform pick drawn from each, preserving the cloud's spatial
    coverage (points are stored in primitive/scan order, so strata are
    spatially coherent).  Exact pass-through when the cloud is already
    small enough: callers get subsampling only when it matters.
    """
    if max_points < 1:
        raise ValueError("max_points must be at least 1")
    n = cloud.num_points
    if n <= max_points:
        return cloud
    rng = np.random.default_rng(np.random.SeedSequence((seed, n, max_points)))
    # Exact integer strata: bounds[i] = floor(i * n / max_points) computed
    # in integer arithmetic.  With n > max_points every stratum has width
    # >= 1, the strata partition [0, n) exactly, and each seeded pick
    # stays inside its own stratum -- so picks are strictly increasing
    # and never duplicated.  (The previous float-linspace construction
    # could round a boundary down, creating a zero-width stratum whose
    # forced widening overlapped its neighbor and duplicated an index.)
    bounds = (np.arange(max_points + 1, dtype=np.int64) * n) // max_points
    lows = bounds[:-1]
    highs = bounds[1:]
    picks = lows + rng.integers(0, highs - lows)
    return cloud.select(picks)


def pointssim_batch(
    pairs,
    k: int = 9,
    proximity_scale: float | None = None,
    cache=None,
    max_points: int | None = None,
    seed: int = 0,
) -> list[PSSIMResult]:
    """Score many (reference, distorted) pairs in one structure-of-arrays pass.

    Float-identical to calling :func:`pointssim` once per pair, by
    construction:

    * feature extraction (the KD-tree half) runs through the exact
      per-cloud :func:`precompute_features` path, but only **once per
      distinct cloud object** in the batch -- a reference shared by
      several pairs (every baseline scored against the same ground
      truth, every SFU receiver against the same uplink frame) builds
      its tree and features a single time;
    * the cross-cloud 1-NN association stays a per-direction
      ``b.tree.query(a.positions)`` (KD queries are not batchable
      without changing tie-breaking);
    * the comparison half -- :func:`_feature_similarity`, the Gaussian
      proximity term, and the 0-100 pooling -- is elementwise, so all
      directions of all pairs are concatenated and pushed through
      *one* vectorized pass per channel.  Elementwise ufuncs give the
      same IEEE result per lane regardless of batching, and each
      direction's mean reduces a contiguous slice holding exactly the
      values the scalar path reduces, so numpy's pairwise summation
      visits them in the same order.

    Empty distorted clouds score ``PSSIMResult(0, 0)`` in place, as in
    the scalar path; an empty reference raises.
    """
    pairs = list(pairs)
    results: list[PSSIMResult | None] = [None] * len(pairs)

    # Feature builds deduplicated on cloud object identity.  Holding the
    # cloud in the memo value keeps its id() from being recycled while
    # the batch is alive.
    memo: dict[int, tuple[PointCloud, CloudFeatures]] = {}

    def features_of(cloud: PointCloud) -> CloudFeatures:
        key = id(cloud)
        hit = memo.get(key)
        if hit is not None:
            return hit[1]
        scored = cloud
        if max_points is not None:
            scored = stratified_subsample(scored, max_points, seed)
        if cache is not None:
            feats = cache.features(scored, k)
        else:
            feats = precompute_features(scored, k)
        memo[key] = (cloud, feats)
        return feats

    # One entry per (pair, direction): the per-direction 1-NN queries
    # stay exact; only the elementwise tail is fused.
    directions: list[tuple] = []
    for index, (reference, distorted) in enumerate(pairs):
        if reference.is_empty:
            raise ValueError("reference cloud must not be empty")
        if distorted.is_empty:
            results[index] = PSSIMResult(0.0, 0.0)
            continue
        ref_features = features_of(reference)
        dist_features = features_of(distorted)
        diagonal = float(np.linalg.norm(ref_features.hi - ref_features.lo))
        scale = proximity_scale
        if scale is None:
            scale = max(diagonal * 0.015, 1e-6)
        for a, b in ((ref_features, dist_features), (dist_features, ref_features)):
            nn_distance, nn_index = b.tree.query(a.positions)
            directions.append(
                (
                    index,
                    a.num_points,
                    a.geometry,
                    b.geometry[nn_index],
                    a.color,
                    b.color[nn_index],
                    nn_distance,
                    scale,
                )
            )

    if not directions:
        return [r if r is not None else PSSIMResult(0.0, 0.0) for r in results]

    lengths = np.array([d[1] for d in directions])
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    geometry_a = np.concatenate([d[2] for d in directions])
    geometry_b = np.concatenate([d[3] for d in directions])
    color_a = np.concatenate([d[4] for d in directions])
    color_b = np.concatenate([d[5] for d in directions])
    nn_distances = np.concatenate([d[6] for d in directions])
    scales = np.concatenate(
        [np.full(d[1], d[7], dtype=np.float64) for d in directions]
    )

    geometry_similarity = _feature_similarity(geometry_a, geometry_b)
    color_similarity = _feature_similarity(color_a, color_b)
    proximity = np.exp(-((nn_distances / scales) ** 2))
    geometry_scored = geometry_similarity * proximity

    pair_scores: dict[int, tuple[list[float], list[float]]] = {}
    for slot, direction in enumerate(directions):
        pair_index = direction[0]
        start, end = offsets[slot], offsets[slot + 1]
        geometry_score = float(geometry_scored[start:end].mean())
        color_score = float(color_similarity[start:end].mean())
        bucket = pair_scores.setdefault(pair_index, ([], []))
        bucket[0].append(geometry_score)
        bucket[1].append(color_score)

    for pair_index, (scores_geometry, scores_color) in pair_scores.items():
        results[pair_index] = PSSIMResult(
            geometry=100.0 * float(np.mean(scores_geometry)),
            color=100.0 * float(np.mean(scores_color)),
        )
    return [r if r is not None else PSSIMResult(0.0, 0.0) for r in results]


def pointssim(
    reference: PointCloud,
    distorted: PointCloud,
    k: int = 9,
    proximity_scale: float | None = None,
    cache=None,
    max_points: int | None = None,
    seed: int = 0,
) -> PSSIMResult:
    """PointSSIM between a reference and a distorted cloud.

    Args:
        reference: ground-truth cloud.
        distorted: reconstructed cloud.
        k: neighborhood size for local features.
        proximity_scale: length scale (m) for the geometric proximity
            term; defaults to 1.5 percent of the reference bbox diagonal
            (roughly twice the render voxel for room-scale scenes).
        cache: optional :class:`~repro.perf.features.FeatureCache`;
            feature builds for content already seen are skipped.  Scores
            are bit-identical with or without a cache.
        max_points: optional approximation knob -- clouds larger than
            this are deterministically stratified-subsampled before
            scoring (seeded by ``seed``).  Off by default; exact when
            both clouds already fit.
        seed: RNG seed for the subsample mode.

    Returns:
        Geometry and color scores on 0-100.  An empty distorted cloud
        scores 0 (the paper assigns stalled frames a PSSIM of 0).
    """
    if reference.is_empty:
        raise ValueError("reference cloud must not be empty")
    if distorted.is_empty:
        return PSSIMResult(0.0, 0.0)

    if max_points is not None:
        reference = stratified_subsample(reference, max_points, seed)
        distorted = stratified_subsample(distorted, max_points, seed)

    if cache is not None:
        ref_features = cache.features(reference, k)
        dist_features = cache.features(distorted, k)
    else:
        ref_features = precompute_features(reference, k)
        dist_features = precompute_features(distorted, k)
    return pointssim_from_features(ref_features, dist_features, proximity_scale)
