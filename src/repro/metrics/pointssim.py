"""PointSSIM: structural 3D quality for colored point clouds.

Follows Alexiou & Ebrahimi's PointSSIM structure, which the paper
adopts because "it can measure both geometry and color distortions by
directly extending the popular SSIM metric to 3D" (section 2):

1. for every point, compute a *local feature* over its k-nearest
   neighborhood -- the dispersion (variance) of neighbor distances for
   geometry, the luminance statistics for color;
2. associate each point of one cloud with its nearest neighbor in the
   other and compare the feature maps with an SSIM-style ratio
   ``1 - |fa - fb| / max(|fa|, |fb|)``;
3. pool symmetrically (both directions) into a single score.

As in the paper's usage, scores are reported on a 0-100 scale where
"values in the high 80s or above are generally considered good".  The
geometry score additionally folds in a normalized point-to-point
proximity term so rigid drifts (which leave local dispersion intact)
are still penalized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.pointcloud import PointCloud

__all__ = ["PSSIMResult", "pointssim"]

_LUMA = np.array([0.299, 0.587, 0.114])


@dataclass(frozen=True)
class PSSIMResult:
    """Separate geometry and color quality scores, 0-100."""

    geometry: float
    color: float


def _luminance(colors: np.ndarray) -> np.ndarray:
    return colors.astype(np.float64) @ _LUMA


def _local_features(
    positions: np.ndarray, luminance: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, cKDTree]:
    """Per-point neighborhood features: distance dispersion + mean luma."""
    tree = cKDTree(positions)
    neighbors = min(k + 1, len(positions))
    distances, indices = tree.query(positions, k=neighbors)
    if neighbors == 1:
        distances = distances[:, None]
        indices = indices[:, None]
    # Drop self (first column).
    neighbor_distances = distances[:, 1:] if distances.shape[1] > 1 else distances
    # Mean neighbor distance: a stable local-structure estimator (the
    # variance estimator PointSSIM also offers is far noisier on sparse
    # clouds and would dominate the score with sampling noise).
    geometry_feature = neighbor_distances.mean(axis=1)
    color_feature = luminance[indices].mean(axis=1)
    return geometry_feature, color_feature, tree


def _feature_similarity(fa: np.ndarray, fb: np.ndarray) -> np.ndarray:
    denominator = np.maximum(np.abs(fa), np.abs(fb))
    similarity = np.ones_like(fa)
    nonzero = denominator > 1e-12
    similarity[nonzero] = 1.0 - np.abs(fa[nonzero] - fb[nonzero]) / denominator[nonzero]
    return np.clip(similarity, 0.0, 1.0)


def pointssim(
    reference: PointCloud,
    distorted: PointCloud,
    k: int = 9,
    proximity_scale: float | None = None,
) -> PSSIMResult:
    """PointSSIM between a reference and a distorted cloud.

    Args:
        reference: ground-truth cloud.
        distorted: reconstructed cloud.
        k: neighborhood size for local features.
        proximity_scale: length scale (m) for the geometric proximity
            term; defaults to 1.5 percent of the reference bbox diagonal
            (roughly twice the render voxel for room-scale scenes).

    Returns:
        Geometry and color scores on 0-100.  An empty distorted cloud
        scores 0 (the paper assigns stalled frames a PSSIM of 0).
    """
    if reference.is_empty:
        raise ValueError("reference cloud must not be empty")
    if distorted.is_empty:
        return PSSIMResult(0.0, 0.0)

    lo, hi = reference.bounds()
    diagonal = float(np.linalg.norm(hi - lo))
    if proximity_scale is None:
        proximity_scale = max(diagonal * 0.015, 1e-6)

    ref_geometry, ref_color, ref_tree = _local_features(
        reference.positions, _luminance(reference.colors), k
    )
    dist_geometry, dist_color, dist_tree = _local_features(
        distorted.positions, _luminance(distorted.colors), k
    )

    scores_geometry = []
    scores_color = []
    for fa_geometry, fa_color, a_positions, b_tree, fb_geometry, fb_color in (
        (ref_geometry, ref_color, reference.positions, dist_tree, dist_geometry, dist_color),
        (dist_geometry, dist_color, distorted.positions, ref_tree, ref_geometry, ref_color),
    ):
        nn_distance, nn_index = b_tree.query(a_positions)
        geometry_similarity = _feature_similarity(fa_geometry, fb_geometry[nn_index])
        # Gaussian proximity: errors well below the scale (e.g. voxel
        # jitter) barely register; errors beyond it are punished hard.
        proximity = np.exp(-((nn_distance / proximity_scale) ** 2))
        scores_geometry.append(float((geometry_similarity * proximity).mean()))
        color_similarity = _feature_similarity(fa_color, fb_color[nn_index])
        scores_color.append(float(color_similarity.mean()))

    return PSSIMResult(
        geometry=100.0 * float(np.mean(scores_geometry)),
        color=100.0 * float(np.mean(scores_color)),
    )
