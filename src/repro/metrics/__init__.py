"""Quality metrics: image RMSE/PSNR, PointSSIM, MOS model, latency.

- :mod:`repro.metrics.image` -- 2D pixel metrics; the RMSE here is what
  LiVo's bandwidth splitter balances (section 3.3);
- :mod:`repro.metrics.pointssim` -- the PointSSIM 3D quality metric
  (Alexiou & Ebrahimi) the paper scores with: separate geometry and
  color scores on a 0-100 scale;
- :mod:`repro.metrics.mos` -- the user-study substitute: a QoE model
  mapping objective measurements to Likert opinion scores;
- :mod:`repro.metrics.latency` -- the per-component latency model
  behind Table 6.
"""

from repro.metrics.image import psnr, rmse
from repro.metrics.latency import LatencyBreakdown, latency_table
from repro.metrics.mos import CommentModel, MOSModel, SessionQoE
from repro.metrics.pointssim import PSSIMResult, pointssim

__all__ = [
    "psnr",
    "rmse",
    "LatencyBreakdown",
    "latency_table",
    "CommentModel",
    "MOSModel",
    "SessionQoE",
    "PSSIMResult",
    "pointssim",
]
