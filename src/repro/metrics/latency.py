"""Per-component latency model (Table 6).

The paper's absolute per-stage latencies come from C++/CUDA stages on
desktop GPUs; a Python simulator cannot reproduce wall-clock costs, so
-- per the substitution rule -- stage costs are *modeled* with constants
anchored to the paper's measurements (sender ~64 ms, receiver ~53 ms,
WebRTC transmission ~137 ms of which 100 ms is jitter buffer, rendering
within 6 ms, end-to-end ~250 ms), while the transmission component can
be replaced by the actually-simulated network + jitter-buffer delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["StageLatencies", "LatencyBreakdown", "latency_table"]


@dataclass(frozen=True)
class StageLatencies:
    """Per-stage latency constants in milliseconds."""

    capture: float = 8.0
    view_generation: float = 22.0      # includes culling for LiVo
    tiling: float = 12.0
    encoding: float = 22.0
    transmission: float = 137.0        # network + 100 ms jitter buffer
    receive_sync: float = 14.0
    decoding: float = 18.0
    reconstruction: float = 21.0
    rendering: float = 6.0             # within the <20 ms MTP budget


# LiVo culls at the sender (view generation is heavier there); NoCull
# skips sender culling but must cull at the receiver (reconstruction is
# heavier) -- the asymmetry Table 6 reports.
LIVO_STAGES = StageLatencies()
LIVO_NOCULL_STAGES = StageLatencies(view_generation=14.0, reconstruction=32.0)


@dataclass
class LatencyBreakdown:
    """End-to-end latency composition for one scheme."""

    scheme: str
    stages: StageLatencies
    measured_transmission_ms: float | None = field(default=None)

    @property
    def transmission_ms(self) -> float:
        """Simulated transmission latency when available, else the model.

        "No measurement" is ``None`` *or* NaN (the nan-safe stats paths
        report NaN when nothing was delivered); a measured 0.0 ms -- or
        any sub-millisecond value -- is a legal measurement and is
        honored, never confused with "missing".
        """
        measured = self.measured_transmission_ms
        if measured is not None and not math.isnan(measured):
            return measured
        return self.stages.transmission

    @property
    def sender_ms(self) -> float:
        """Sender processing: capture + view generation + tiling + encode."""
        s = self.stages
        return s.capture + s.view_generation + s.tiling + s.encoding

    @property
    def receiver_ms(self) -> float:
        """Receiver processing: receive/sync + decode + reconstruction."""
        s = self.stages
        return s.receive_sync + s.decoding + s.reconstruction

    @property
    def end_to_end_ms(self) -> float:
        """Total sender -> display latency."""
        return self.sender_ms + self.transmission_ms + self.receiver_ms + self.stages.rendering

    def rows(self) -> list[tuple[str, float]]:
        """Table 6-style component rows."""
        s = self.stages
        return [
            ("capture", s.capture),
            ("view generation", s.view_generation),
            ("tiling", s.tiling),
            ("encoding", s.encoding),
            ("transmission", self.transmission_ms),
            ("receive+sync", s.receive_sync),
            ("decoding", s.decoding),
            ("reconstruction", s.reconstruction),
            ("rendering", s.rendering),
            ("end-to-end", self.end_to_end_ms),
        ]


def latency_table(
    livo_transmission_ms: float | None = None,
    nocull_transmission_ms: float | None = None,
) -> dict[str, LatencyBreakdown]:
    """Build the Table 6 comparison for LiVo and LiVo-NoCull."""
    return {
        "LiVo": LatencyBreakdown("LiVo", LIVO_STAGES, livo_transmission_ms),
        "LiVo-NoCull": LatencyBreakdown(
            "LiVo-NoCull", LIVO_NOCULL_STAGES, nocull_transmission_ms
        ),
    }
