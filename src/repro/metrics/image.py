"""2D pixel metrics.

LiVo's split controller estimates encoding quality with "the
root-mean-square error (RMSE) in pixel values between the original
(depth or color) frame and the decoded frame" because it is "far more
compute-efficient" than reconstructing point clouds at the sender
(section 3.3).
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "psnr", "masked_rmse"]


def rmse(reference: np.ndarray, distorted: np.ndarray) -> float:
    """Root-mean-square pixel error between two same-shaped images."""
    reference = np.asarray(reference, dtype=np.float64)
    distorted = np.asarray(distorted, dtype=np.float64)
    if reference.shape != distorted.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {distorted.shape}"
        )
    return float(np.sqrt(((reference - distorted) ** 2).mean()))


def masked_rmse(reference: np.ndarray, distorted: np.ndarray, mask: np.ndarray) -> float:
    """RMSE over pixels where ``mask`` is True (e.g. inside the cull).

    Returns 0.0 for an empty mask.
    """
    reference = np.asarray(reference, dtype=np.float64)
    distorted = np.asarray(distorted, dtype=np.float64)
    if reference.shape != distorted.shape:
        raise ValueError("shape mismatch")
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != reference.shape[: mask.ndim]:
        raise ValueError("mask shape mismatch")
    if not mask.any():
        return 0.0
    difference = (reference - distorted)[mask]
    return float(np.sqrt((difference**2).mean()))


def psnr(reference: np.ndarray, distorted: np.ndarray, peak: float | None = None) -> float:
    """Peak signal-to-noise ratio in dB; infinity for identical images."""
    reference = np.asarray(reference)
    if peak is None:
        peak = 65535.0 if reference.dtype == np.uint16 else 255.0
    error = rmse(reference, distorted)
    if error == 0:
        return float("inf")
    return float(20.0 * np.log10(peak / error))
