#!/usr/bin/env python3
"""Quickstart: one LiVo conferencing session, end to end.

Runs a short replay of the *band2* evaluation video through the full
LiVo pipeline -- synthetic 8-camera capture, frustum-predictive culling,
tiling, rate-adaptive 2D encoding with dynamic bandwidth splitting,
WebRTC-like transport over an emulated broadband trace, and receiver
reconstruction -- then prints the session report.

Run:  python examples/quickstart.py
"""

from repro.capture.dataset import load_video
from repro.core import LiVoSession, SessionConfig
from repro.prediction.pose import user_traces_for_video
from repro.transport.traces import trace_1

NUM_FRAMES = 30  # one second of conferencing


def main() -> None:
    # 1. Pick an evaluation video (Table 3 of the paper) and build its
    #    procedural scene.
    spec, scene = load_video("band2", sample_budget=20_000)
    print(f"video: {spec.name} ({spec.description}), {spec.paper_objects} objects")

    # 2. A viewer trace: the receiver's headset poses, one per frame.
    user_trace = user_traces_for_video("band2", NUM_FRAMES + 10)[0]

    # 3. A bandwidth trace (Table 4's trace-1: ~217 Mbps broadband).
    bandwidth = trace_1(duration_s=20)

    # 4. Run the session.  SessionConfig carries every design constant
    #    from the paper (split bounds, guard band, jitter target, ...).
    config = SessionConfig(
        num_cameras=8,
        camera_width=64,
        camera_height=48,
        scene_sample_budget=20_000,
        gop_size=15,
    )
    report = LiVoSession(config).run(
        scene, user_trace, bandwidth, NUM_FRAMES, video_name=spec.name
    )

    # 5. Inspect the outcome.
    print(report.summary())
    geometry_mean, geometry_std = report.pssim_geometry()
    print(f"PSSIM geometry: {geometry_mean:.1f} (std {geometry_std:.1f})")
    print(f"mean depth/color split: {report.mean_split:.3f}")
    print(f"fraction of points kept by culling: {report.mean_culled_fraction:.2f}")
    print(f"link utilization: {report.utilization:.1%}")


if __name__ == "__main__":
    main()
