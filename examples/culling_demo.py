#!/usr/bin/env python3
"""View-culling demo: frustum prediction and its bandwidth payoff.

Tracks a moving viewer with the Kalman frustum predictor, culls each
multi-camera capture to the predicted (guard-banded) frustum, and
prints per-frame prediction error, culling accuracy, and the encoded-
size saving culling buys -- paper section 3.4 end to end.

Run:  python examples/culling_demo.py
"""

import numpy as np

from repro.capture.dataset import load_video
from repro.capture.rig import default_rig
from repro.codec.video import VideoCodecConfig, VideoEncoder
from repro.depthcodec.scaling import scale_depth
from repro.prediction.culling import cull_views, culling_accuracy
from repro.prediction.pose import user_traces_for_video
from repro.prediction.predictor import FrustumPredictor, ViewingDevice
from repro.tiling.tiler import TileLayout, Tiler

NUM_FRAMES = 20
FEEDBACK_LAG_FRAMES = 3
FPS = 30.0


def encoded_size(tiler, encoder, views, sequence, color=True):
    if color:
        tiled = tiler.compose([v.color for v in views], sequence)
    else:
        tiled = tiler.compose([scale_depth(v.depth_mm) for v in views], sequence)
    frame, _ = encoder.encode(tiled, qp=30)
    return frame.size_bytes


def main() -> None:
    _, scene = load_video("pizza1", sample_budget=20_000)
    rig = default_rig(num_cameras=8, width=64, height=48)
    user = user_traces_for_video("pizza1", NUM_FRAMES + 10)[0]
    device = ViewingDevice()
    predictor = FrustumPredictor(device, guard_band_m=0.20)

    intr = rig.cameras[0].intrinsics
    layout = TileLayout.for_cameras(rig.num_cameras, intr.height, intr.width)
    depth_tiler = Tiler(layout, is_color=False)
    encoder_full = VideoEncoder(VideoCodecConfig.for_depth(gop_size=8))
    encoder_culled = VideoEncoder(VideoCodecConfig.for_depth(gop_size=8))

    print(f"{'frame':>5s} {'pos err cm':>11s} {'accuracy':>9s} {'kept':>6s} "
          f"{'full B':>8s} {'culled B':>9s} {'saving':>7s}")
    for sequence in range(NUM_FRAMES):
        # The sender only knows poses FEEDBACK_LAG_FRAMES old.
        if sequence >= FEEDBACK_LAG_FRAMES:
            lagged = sequence - FEEDBACK_LAG_FRAMES
            predictor.observe(user.pose_at_frame(lagged), lagged / FPS)
        frame = rig.capture(scene, sequence)
        if not predictor.ready:
            continue

        horizon = FEEDBACK_LAG_FRAMES / FPS
        predicted_pose = predictor.predict_pose(horizon)
        actual_pose = user.pose_at_frame(sequence)
        position_error_cm = 100 * np.linalg.norm(
            predicted_pose.position - actual_pose.position
        )

        predicted = predictor.predict_frustum(horizon)
        actual = device.frustum_for(actual_pose)
        accuracy, kept = culling_accuracy(frame, rig.cameras, predicted, actual)

        culled = cull_views(frame, rig.cameras, predicted)
        full_bytes = encoded_size(depth_tiler, encoder_full, frame.views, sequence, color=False)
        culled_bytes = encoded_size(depth_tiler, encoder_culled, culled.views, sequence, color=False)
        saving = 1.0 - culled_bytes / full_bytes
        print(
            f"{sequence:5d} {position_error_cm:11.1f} {accuracy:9.1%} {kept:6.1%} "
            f"{full_bytes:8d} {culled_bytes:9d} {saving:7.1%}"
        )

    print(
        "\nAccuracy ~100% means the guard band absorbed the prediction"
        "\nerror; the size column shows culling's bandwidth saving"
        "\n(paper: ~2x lower bandwidth after encoding in most cases)."
    )


if __name__ == "__main__":
    main()
