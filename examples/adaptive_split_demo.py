#!/usr/bin/env python3
"""Bandwidth-splitting demo: watch LiVo balance depth against color.

Encodes a sequence at a fixed total budget and prints, per frame, the
sender-side depth/color RMSE estimates and the split controller's
decision -- the control loop of paper section 3.3 in action.  Halfway
through, the available bandwidth drops sharply so you can watch the
rate controllers and the split react.

Run:  python examples/adaptive_split_demo.py
"""

from repro.capture.dataset import load_video
from repro.capture.rig import default_rig
from repro.core.config import SessionConfig
from repro.core.sender import LiVoSender

NUM_FRAMES = 24
HIGH_RATE_BPS = 10e6
LOW_RATE_BPS = 2.5e6


def main() -> None:
    config = SessionConfig(
        num_cameras=8, camera_width=64, camera_height=48,
        scene_sample_budget=20_000, gop_size=12,
        rmse_every_k=1,      # estimate quality every frame for the demo
        split_step=0.02,     # time-compressed line search (demo-length run)
    )
    _, scene = load_video("band2", sample_budget=20_000)
    rig = default_rig(num_cameras=8, width=64, height=48)
    sender = LiVoSender(rig.cameras, config)

    print(f"{'frame':>5s} {'rate':>6s} {'split':>6s} {'depth RMSE':>11s} "
          f"{'color RMSE':>11s} {'depth B':>8s} {'color B':>8s}")
    for sequence in range(NUM_FRAMES):
        rate = HIGH_RATE_BPS if sequence < NUM_FRAMES // 2 else LOW_RATE_BPS
        frame = rig.capture(scene, sequence)
        result = sender.process(frame, rate, prediction_horizon_s=0.1)
        depth_rmse = f"{result.depth_rmse:11.1f}" if result.depth_rmse is not None else " " * 11
        color_rmse = f"{result.color_rmse:11.2f}" if result.color_rmse is not None else " " * 11
        print(
            f"{sequence:5d} {rate / 1e6:5.1f}M {result.split:6.3f} "
            f"{depth_rmse} {color_rmse} "
            f"{result.depth_frame.size_bytes:8d} {result.color_frame.size_bytes:8d}"
        )

    print(
        "\nThe split rises while depth error dominates color error and"
        "\nsettles once the two are balanced (section 3.3); when the rate"
        "\ndrops, frame sizes follow the new budget within a frame or two."
    )


if __name__ == "__main__":
    main()
