#!/usr/bin/env python3
"""Scheme shootout: LiVo vs its baselines on the same workload.

Replays one video / user / bandwidth combination through all four
evaluation schemes -- LiVo, LiVo-NoCull, Draco-Oracle, and MeshReduce --
and prints a side-by-side comparison like the paper's section 4.3.

Run:  python examples/scheme_shootout.py [video] [trace]
      video in {band2, dance5, office1, pizza1, toddler4}
      trace in {trace-1, trace-2}
"""

import sys

from repro.capture.dataset import load_video, video_names
from repro.core import SessionConfig
from repro.core.session import DracoOracleSession, LiVoSession, MeshReduceSession
from repro.core.config import SchemeFlags
from repro.prediction.pose import user_traces_for_video
from repro.transport.traces import trace_1, trace_2

NUM_FRAMES = 30


def main() -> None:
    video = sys.argv[1] if len(sys.argv) > 1 else "pizza1"
    trace_name = sys.argv[2] if len(sys.argv) > 2 else "trace-2"
    if video not in video_names():
        raise SystemExit(f"unknown video {video!r}; pick one of {video_names()}")

    spec, scene = load_video(video, sample_budget=20_000)
    user = user_traces_for_video(video, NUM_FRAMES + 10)[0]
    bandwidth = trace_1(duration_s=20) if trace_name == "trace-1" else trace_2(duration_s=20)

    def config(culling: bool = True) -> SessionConfig:
        return SessionConfig(
            num_cameras=8, camera_width=64, camera_height=48,
            scene_sample_budget=20_000, gop_size=15,
            scheme=SchemeFlags(culling=culling),
        )

    print(f"workload: {video} / {user.name} / {trace_name}, {NUM_FRAMES} frames\n")
    reports = []
    print("running LiVo ...")
    reports.append(
        LiVoSession(config(True)).run(scene, user, bandwidth, NUM_FRAMES, video)
    )
    print("running LiVo-NoCull ...")
    reports.append(
        LiVoSession(config(False)).run(
            scene, user, bandwidth, NUM_FRAMES, video, scheme_name="LiVo-NoCull"
        )
    )
    print("running Draco-Oracle ...")
    reports.append(
        DracoOracleSession(config()).run(scene, user, bandwidth, NUM_FRAMES, video)
    )
    print("running MeshReduce ...")
    reports.append(
        MeshReduceSession(config()).run(scene, user, bandwidth, NUM_FRAMES, video)
    )

    print()
    header = (
        f"{'Scheme':13s} {'fps':>6s} {'stalls':>8s} {'PSSIM g':>8s} "
        f"{'PSSIM c':>8s} {'tput Mbps':>10s} {'util':>6s}"
    )
    print(header)
    print("-" * len(header))
    for report in reports:
        geometry, _ = report.pssim_geometry()
        color, _ = report.pssim_color()
        print(
            f"{report.scheme:13s} {report.mean_fps:6.1f} {report.stall_rate:8.1%} "
            f"{geometry:8.1f} {color:8.1f} {report.throughput_mbps:10.2f} "
            f"{report.utilization:6.1%}"
        )


if __name__ == "__main__":
    main()
