#!/usr/bin/env python3
"""Codec playground: rate-distortion behaviour of the 2D codec.

Sweeps QP over a captured color tile and a scaled-depth tile, printing
the rate-distortion curve for each — the raw material behind LiVo's
bandwidth-splitting decisions — and then demonstrates direct rate
adaptation by asking the encoder for specific byte budgets.

Run:  python examples/codec_playground.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.capture.dataset import load_video
from repro.capture.rig import default_rig
from repro.codec.video import VideoCodecConfig, VideoEncoder
from repro.depthcodec.scaling import scale_depth
from repro.tiling.tiler import TileLayout, Tiler


def rd_sweep(tile, config, qps):
    rows = []
    for qp in qps:
        encoder = VideoEncoder(config)
        encoded, recon = encoder.encode(tile, qp=qp)
        rmse = float(np.sqrt(((recon.astype(float) - tile.astype(float)) ** 2).mean()))
        rows.append({"qp": qp, "bytes": encoded.size_bytes, "rmse": round(rmse, 2)})
    return rows


def main() -> None:
    _, scene = load_video("band2", sample_budget=20_000)
    rig = default_rig(num_cameras=8, width=64, height=48)
    frame = rig.capture(scene, 0)
    intr = rig.cameras[0].intrinsics
    layout = TileLayout.for_cameras(rig.num_cameras, intr.height, intr.width)

    color_tile = Tiler(layout, is_color=True).compose(
        [v.color for v in frame.views], 0
    )
    depth_tile = Tiler(layout, is_color=False).compose(
        [scale_depth(v.depth_mm) for v in frame.views], 0
    )

    print("color stream (8-bit YCbCr, perceptual quantization):")
    print(format_table(rd_sweep(color_tile, VideoCodecConfig(gop_size=1),
                                (8, 16, 24, 32, 40, 48))))
    print("\ndepth stream (16-bit Y, flat quantization, extended QP):")
    print(format_table(rd_sweep(depth_tile, VideoCodecConfig.for_depth(gop_size=1),
                                (10, 30, 50, 70, 90))))

    print("\ndirect rate adaptation (the property LiVo's design rests on):")
    rows = []
    for target in (40_000, 20_000, 10_000, 5_000):
        # Fresh intra-only encoder per target: each frame carries the
        # full tile, so the byte budget is genuinely exercised.
        encoder = VideoEncoder(VideoCodecConfig.for_depth(gop_size=1))
        for _ in range(4):  # let the rate model settle
            encoded, _ = encoder.encode_to_target(depth_tile, target)
        rows.append({
            "target_bytes": target,
            "actual_bytes": encoded.size_bytes,
            "chosen_qp": encoded.qp,
        })
    print(format_table(rows))


if __name__ == "__main__":
    main()
