#!/usr/bin/env python3
"""Two-way conferencing: a LiVo pipeline in each direction.

The paper's deployment model (section 3.1): each site runs one sender
and one receiver.  This example runs two independent sessions -- site A
streaming its scene to site B's viewer and vice versa -- over the same
bandwidth trace, and reports both directions, demonstrating the
symmetric two-way configuration the paper evaluates one direction of.

Run:  python examples/two_way_conference.py
"""

from repro.capture.dataset import load_video
from repro.core import LiVoSession, SessionConfig
from repro.prediction.pose import user_traces_for_video
from repro.transport.traces import trace_2

NUM_FRAMES = 24


def main() -> None:
    config = SessionConfig(
        num_cameras=8, camera_width=64, camera_height=48,
        scene_sample_budget=20_000, gop_size=12,
    )

    # Site A captures a band rehearsal; site B captures an office.
    _, scene_a = load_video("band2", sample_budget=20_000)
    _, scene_b = load_video("office1", sample_budget=20_000)
    viewer_at_b = user_traces_for_video("band2", NUM_FRAMES + 10)[0]
    viewer_at_a = user_traces_for_video("office1", NUM_FRAMES + 10)[1]

    # Each direction gets its own emulated uplink (the paper's testbed
    # had symmetric 1 Gbps links shaped by Mahimahi per direction).
    bandwidth_ab = trace_2(duration_s=20, seed=11)
    bandwidth_ba = trace_2(duration_s=20, seed=12)

    print("direction A -> B (band2 to B's viewer):")
    report_ab = LiVoSession(config).run(
        scene_a, viewer_at_b, bandwidth_ab, NUM_FRAMES, video_name="band2"
    )
    print(" ", report_ab.summary())

    print("direction B -> A (office1 to A's viewer):")
    report_ba = LiVoSession(config).run(
        scene_b, viewer_at_a, bandwidth_ba, NUM_FRAMES, video_name="office1"
    )
    print(" ", report_ba.summary())

    total = report_ab.throughput_mbps + report_ba.throughput_mbps
    print(f"\ncombined two-way throughput: {total:.2f} Mbps (scaled domain)")
    print(
        "both directions hold full frame rate independently -- the\n"
        "pipelines share nothing but the machine, as in the paper."
    )


if __name__ == "__main__":
    main()
