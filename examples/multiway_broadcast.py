#!/usr/bin/env python3
"""Multi-way conferencing: one sender, three receivers.

Demonstrates the cross-receiver optimization the paper leaves to future
work (section 3.1): instead of encoding a separately-culled stream per
receiver (unicast), the sender culls once to the *union* of all
receivers' predicted frustums and encodes a single shared stream.

Run:  python examples/multiway_broadcast.py
"""

from repro.capture.dataset import load_video
from repro.capture.rig import default_rig
from repro.core.config import SessionConfig
from repro.core.multiway import MultiwaySender
from repro.prediction.pose import user_traces_for_video

NUM_FRAMES = 10
RECEIVERS = ["alice", "bob", "carol"]


def main() -> None:
    config = SessionConfig(
        num_cameras=8, camera_width=64, camera_height=48,
        scene_sample_budget=20_000, gop_size=8,
    )
    _, scene = load_video("band2", sample_budget=20_000)
    rig = default_rig(num_cameras=8, width=64, height=48)
    traces = user_traces_for_video("band2", NUM_FRAMES + 10, num_traces=3)

    totals = {}
    for mode in ("unicast", "shared"):
        sender = MultiwaySender(rig.cameras, config, RECEIVERS, mode=mode)
        total_bytes = 0
        for sequence in range(NUM_FRAMES):
            for index, name in enumerate(RECEIVERS):
                sender.observe_pose(
                    name, traces[index].pose_at_frame(sequence), sequence / 30.0
                )
            frame = rig.capture(scene, sequence)
            result = sender.process(frame, 8e6, 0.1)
            total_bytes += result.total_bytes
        totals[mode] = total_bytes
        print(
            f"{mode:8s}: {total_bytes / NUM_FRAMES:9.0f} bytes/frame, "
            f"{result.encoder_runs} encoder sessions"
        )

    saving = 1.0 - totals["shared"] / totals["unicast"]
    print(f"\nshared stream saves {saving:.0%} uplink bandwidth for "
          f"{len(RECEIVERS)} receivers — and encoder count stays at 2"
          f"\nregardless of fan-out (hardware encoders cap at ~8 sessions).")


if __name__ == "__main__":
    main()
