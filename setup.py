"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets ``pip install -e . --no-build-isolation`` fall back to the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
